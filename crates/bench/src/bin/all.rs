//! Runs every table and figure in sequence (the full evaluation).

use unsync_bench::{experiments, render, runlog, ExperimentConfig, Json, RunLog, Runner};
use unsync_workloads::Benchmark;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let results_dir = runlog::results_dir();
    let save = |name: &str, content: &str| {
        if std::fs::create_dir_all(&results_dir).is_ok() {
            let _ = std::fs::write(results_dir.join(name), content);
        }
    };
    let mut log = RunLog::start("all", cfg);
    let tag =
        |artifact: &str, rec: Json| Json::obj().field("artifact", artifact).field("data", rec);

    println!("==================== Table II ====================");
    println!("{}", unsync_hwcost::table2().render());
    println!("==================== Table III ===================");
    println!("{}", unsync_hwcost::table3().render());

    println!("==================== Fig. 4 ======================");
    let f4 = experiments::fig4(cfg);
    print!("{}", render::fig4(&f4));
    save("fig4.csv", &render::csv::fig4(&f4));
    for r in &f4 {
        log.record(tag("fig4", render::jsonl::fig4(r)));
    }

    println!("==================== Fig. 5 ======================");
    let f5_benches = [
        Benchmark::Ammp,
        Benchmark::Galgel,
        Benchmark::Sha,
        Benchmark::Bzip2,
    ];
    let f5 = experiments::fig5(cfg, &f5_benches);
    print!("{}", render::fig5(&f5));
    save("fig5.csv", &render::csv::fig5(&f5));
    for c in &f5 {
        log.record(tag("fig5", render::jsonl::fig5(c)));
    }

    println!("==================== Fig. 6 ======================");
    let f6_benches = [Benchmark::Qsort, Benchmark::Rijndael, Benchmark::Bzip2];
    let f6 = experiments::fig6(cfg, &f6_benches);
    print!("{}", render::fig6(&f6));
    save("fig6.csv", &render::csv::fig6(&f6));
    for r in &f6 {
        log.record(tag("fig6", render::jsonl::fig6(r)));
    }

    println!("==================== §VI-C =======================");
    let ser_benches = [
        Benchmark::Bzip2,
        Benchmark::Gzip,
        Benchmark::Ammp,
        Benchmark::Galgel,
        Benchmark::Sha,
    ];
    let sweep = experiments::ser_sweep(cfg, &ser_benches);
    print!("{}", render::ser(&sweep));
    save("ser_sweep.csv", &render::csv::ser(&sweep));
    for rec in render::jsonl::ser(&sweep) {
        log.record(tag("ser_sweep", rec));
    }

    println!("==================== §VI-D =======================");
    let report = experiments::roec(cfg, 40);
    print!("{}", render::roec(&report));
    for rec in render::jsonl::roec(&report) {
        log.record(tag("roec", rec));
    }

    if let Some(p) = log.write(Runner::from_env().workers()) {
        eprintln!("run log: {}", p.display());
    }
}
