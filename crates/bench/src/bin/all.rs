//! Runs every table and figure in sequence (the full evaluation).

use unsync_bench::{experiments, render, ExperimentConfig};
use unsync_workloads::Benchmark;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let results_dir = std::path::Path::new("results");
    let save = |name: &str, content: &str| {
        if results_dir.is_dir() {
            let _ = std::fs::write(results_dir.join(name), content);
        }
    };

    println!("==================== Table II ====================");
    println!("{}", unsync_hwcost::table2().render());
    println!("==================== Table III ===================");
    println!("{}", unsync_hwcost::table3().render());

    println!("==================== Fig. 4 ======================");
    let f4 = experiments::fig4(cfg);
    print!("{}", render::fig4(&f4));
    save("fig4.csv", &render::csv::fig4(&f4));

    println!("==================== Fig. 5 ======================");
    let f5_benches = [Benchmark::Ammp, Benchmark::Galgel, Benchmark::Sha, Benchmark::Bzip2];
    let f5 = experiments::fig5(cfg, &f5_benches);
    print!("{}", render::fig5(&f5));
    save("fig5.csv", &render::csv::fig5(&f5));

    println!("==================== Fig. 6 ======================");
    let f6_benches = [Benchmark::Qsort, Benchmark::Rijndael, Benchmark::Bzip2];
    let f6 = experiments::fig6(cfg, &f6_benches);
    print!("{}", render::fig6(&f6));
    save("fig6.csv", &render::csv::fig6(&f6));

    println!("==================== §VI-C =======================");
    let ser_benches =
        [Benchmark::Bzip2, Benchmark::Gzip, Benchmark::Ammp, Benchmark::Galgel, Benchmark::Sha];
    let sweep = experiments::ser_sweep(cfg, &ser_benches);
    print!("{}", render::ser(&sweep));
    save("ser_sweep.csv", &render::csv::ser(&sweep));

    println!("==================== §VI-D =======================");
    print!("{}", render::roec(&experiments::roec(cfg, 40)));
}
