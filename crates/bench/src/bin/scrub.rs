//! L2 ECC scrubbing analysis: how often the shared L2 must be scrubbed
//! for its "always a correct copy" role in UnSync's recovery story to
//! hold at a given reliability budget.

use unsync_bench::{Json, RunLog};
use unsync_fault::ScrubModel;

fn main() {
    let m = ScrubModel::l2_table1();
    let mut log = RunLog::start_static("scrub");
    println!(
        "Shared L2 ({} codewords × {} bits, {} FIT/bit raw rate)",
        m.codewords, m.codeword_bits, m.fit_per_bit
    );
    println!("{:>16} {:>24}", "scrub period", "uncorrectable FIT (L2)");
    for (label, secs) in [
        ("1 minute", 60.0),
        ("1 hour", 3_600.0),
        ("1 day", 86_400.0),
        ("1 week", 604_800.0),
        ("1 month", 2_592_000.0),
        ("1 year", 31_536_000.0),
    ] {
        println!("{label:>16} {:>24.6}", m.uncorrectable_fit(secs));
        log.record(
            Json::obj()
                .field("scrub_period_s", secs)
                .field("uncorrectable_fit", m.uncorrectable_fit(secs)),
        );
    }
    for target in [1.0, 0.01] {
        let t = m.required_scrub_interval(target);
        log.record(
            Json::obj()
                .field("target_fit", target)
                .field("required_scrub_interval_s", t),
        );
        println!(
            "\nto keep the whole L2 at ≤ {target} FIT of uncorrectable errors, scrub every \
             {:.1} hours",
            t / 3_600.0
        );
    }
    if let Some(p) = log.write(1) {
        eprintln!("run log: {}", p.display());
    }
    println!("\nReading: double-strike accumulation is quadratic in the scrub period, so even");
    println!("leisurely scrub rates keep the SECDED L2 effectively error-free — which is what");
    println!("lets both the paper's recovery (UnSync) and its baseline assumption (Reunion's");
    println!("ECC L1/L2) treat the protected arrays as always-correct sources.");
}
