//! Sensitivity analysis: do the headline conclusions survive changes to
//! the Table I machine? Sweeps core width and ROB depth and re-measures
//! the Reunion/UnSync overheads on the serializing-heavy trio.

use unsync_bench::{ExperimentConfig, Json, RunLog};
use unsync_core::{UnsyncConfig, UnsyncPair};
use unsync_reunion::{ReunionConfig, ReunionPair};
use unsync_sim::{run_baseline, CoreConfig};
use unsync_workloads::{Benchmark, WorkloadGen};

fn variant(name: &str) -> CoreConfig {
    let mut c = CoreConfig::table1();
    match name {
        "2-wide" => {
            c.fetch_width = 2;
            c.dispatch_width = 2;
            c.commit_width = 2;
            c.int_alus = 2;
            c.mem_ports = 1;
            c.iq_size = 32;
            c.rob_size = 64;
            c.lsq_size = 32;
        }
        "table1" => {}
        "6-wide" => {
            c.fetch_width = 6;
            c.dispatch_width = 6;
            c.commit_width = 6;
            c.int_alus = 6;
            c.fp_units = 3;
            c.mem_ports = 3;
            c.iq_size = 96;
            c.rob_size = 192;
            c.lsq_size = 96;
        }
        "rob-64" => c.rob_size = 64,
        "rob-256" => c.rob_size = 256,
        other => panic!("unknown variant {other}"),
    }
    c
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let benches = Benchmark::serializing_heavy();
    println!(
        "Core-configuration sensitivity on {{bzip2, ammp, galgel}} ({} instructions)",
        cfg.inst_count
    );
    println!(
        "{:<10} {:>22} {:>22}",
        "machine", "Reunion ovh (avg)", "UnSync ovh (avg)"
    );
    let mut log = RunLog::start("sensitivity", cfg);
    for name in ["2-wide", "rob-64", "table1", "rob-256", "6-wide"] {
        let core = variant(name);
        let (mut r_sum, mut u_sum) = (0.0, 0.0);
        for bench in benches {
            let t = WorkloadGen::new(bench, cfg.inst_count, cfg.seed).collect_trace();
            let mut s = WorkloadGen::new(bench, cfg.inst_count, cfg.seed);
            let base = run_baseline(core, &mut s).core.last_commit_cycle as f64;
            let r = ReunionPair::new(core, ReunionConfig::paper_baseline())
                .run(&t, &[])
                .cycles;
            let u = UnsyncPair::new(core, UnsyncConfig::paper_baseline())
                .run(&t, &[])
                .cycles;
            r_sum += r as f64 / base - 1.0;
            u_sum += u as f64 / base - 1.0;
        }
        log.record(
            Json::obj()
                .field("machine", name)
                .field(
                    "reunion_overhead_avg_pct",
                    r_sum / benches.len() as f64 * 100.0,
                )
                .field(
                    "unsync_overhead_avg_pct",
                    u_sum / benches.len() as f64 * 100.0,
                ),
        );
        println!(
            "{:<10} {:>21.2}% {:>21.2}%",
            name,
            r_sum / benches.len() as f64 * 100.0,
            u_sum / benches.len() as f64 * 100.0
        );
    }
    if let Some(p) = log.write(1) {
        eprintln!("run log: {}", p.display());
    }
    println!("\nReading: the ordering (Reunion pays double digits on serializing workloads,");
    println!("UnSync stays near zero) is robust across machine widths and window depths —");
    println!("it follows from the synchronization protocol, not from Table I specifics.");
}
