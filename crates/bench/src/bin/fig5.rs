//! Regenerates Fig. 5: Reunion performance vs. fingerprint interval and
//! comparison latency (ROB-occupancy sensitivity).

use unsync_bench::{experiments, render, ExperimentConfig, RunLog, Runner};
use unsync_workloads::Benchmark;

fn main() {
    let cfg = ExperimentConfig::from_env();
    // The paper highlights ammp and galgel; a cache-resident MiBench
    // kernel and a memory-bound code complete the picture.
    let benches = [
        Benchmark::Ammp,
        Benchmark::Galgel,
        Benchmark::Sha,
        Benchmark::Bzip2,
        Benchmark::Mcf,
    ];
    let mut log = RunLog::start("fig5", cfg);
    let cells = experiments::fig5(cfg, &benches);
    print!("{}", render::fig5(&cells));
    for c in &cells {
        log.record(render::jsonl::fig5(c));
    }
    if let Some(p) = log.write(Runner::from_env().workers()) {
        eprintln!("run log: {}", p.display());
    }
    println!();
    println!("Paper claims: at FI=30/latency=40 ammp degrades ~27 % and galgel ~41 %;");
    println!("UnSync is flat (no fingerprints, no inter-core comparison).");
}
