//! The results dashboard: per-scheme event-rate tables from a results
//! directory, run-to-run diffing, and a textual cycle-domain timeline.
//!
//! ```text
//! dashboard [DIR]                          # table (default: results dir)
//! dashboard --diff A B [--tolerance T] [--meta]
//! dashboard timeline                       # swimlane + episode table
//! ```
//!
//! `timeline` renders the same scenario `--bin trace_export` serializes
//! (`UNSYNC_LANES` / `UNSYNC_INSTS` / `UNSYNC_SEED` shape it) as a
//! textual swimlane per lane plus the episode table.
//!
//! Exit codes: 0 = rendered / diff clean, 1 = diff found deltas,
//! 2 = usage or I/O error. See EXPERIMENTS.md ("Results dashboard").

use std::path::PathBuf;
use std::process::ExitCode;

use unsync_bench::dashboard::{
    bank_rows, campaign_rows, diff_dirs, health_counters, load_dir, render_bank_table,
    render_campaign_table, render_health_line, render_scheme_table, roec_table, scheme_rows,
    scheme_stats, DiffOptions,
};
use unsync_bench::roec_uncore::render_vulnerability_table;
use unsync_bench::runlog;
use unsync_bench::timeline::TimelineScenarioConfig;

fn usage() -> ExitCode {
    eprintln!("usage: dashboard [DIR]");
    eprintln!("       dashboard --diff DIR_A DIR_B [--tolerance T] [--meta]");
    eprintln!("       dashboard timeline");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--diff") {
        return run_diff(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("timeline") {
        return run_timeline(&args[1..]);
    }
    let dir = match args.len() {
        0 => runlog::results_dir(),
        1 if !args[0].starts_with("--") => PathBuf::from(&args[0]),
        _ => return usage(),
    };
    let logs = match load_dir(&dir) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("dashboard: {e}");
            return ExitCode::from(2);
        }
    };
    let stats = scheme_stats(&logs);
    let rows = scheme_rows(&stats);
    if rows.is_empty() {
        eprintln!(
            "dashboard: no scheme metrics in {} ({} log files) — run an experiment first",
            dir.display(),
            logs.len()
        );
        return ExitCode::from(2);
    }
    println!(
        "Per-scheme metrics from {} ({} log files)",
        dir.display(),
        logs.len()
    );
    print!("{}", render_scheme_table(&rows));
    let banks = bank_rows(&stats);
    if !banks.is_empty() {
        println!();
        println!("L2 bank occupancy ({} banks with traffic)", banks.len());
        print!("{}", render_bank_table(&banks));
    }
    let health = health_counters(&logs);
    if !health.clean() {
        println!();
        println!("{}", render_health_line(&health));
    }
    let roec = roec_table(&logs);
    if roec.total() > 0 {
        println!();
        println!(
            "Uncore vulnerability (ROEC campaign, {} strikes)",
            roec.total()
        );
        print!("{}", render_vulnerability_table(&roec));
    }
    let campaigns = campaign_rows(&logs);
    if !campaigns.is_empty() {
        println!();
        println!("Campaign engine runs ({} logs)", campaigns.len());
        print!("{}", render_campaign_table(&campaigns));
    }
    ExitCode::SUCCESS
}

/// Renders the shared timeline scenario as a textual swimlane.
fn run_timeline(args: &[String]) -> ExitCode {
    if !args.is_empty() {
        return usage();
    }
    let cfg = TimelineScenarioConfig::from_env();
    let timeline = unsync_bench::build_timeline(&cfg);
    print!("{}", timeline.render_summary(72));
    ExitCode::SUCCESS
}

fn run_diff(args: &[String]) -> ExitCode {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut opts = DiffOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                let Some(t) = args.get(i + 1).and_then(|t| t.parse::<f64>().ok()) else {
                    return usage();
                };
                if t.is_nan() || t < 0.0 {
                    return usage();
                }
                opts.tolerance = t;
                i += 2;
            }
            "--meta" => {
                opts.include_meta = true;
                i += 1;
            }
            a if !a.starts_with("--") => {
                dirs.push(PathBuf::from(a));
                i += 1;
            }
            _ => return usage(),
        }
    }
    let [a, b] = dirs.as_slice() else {
        return usage();
    };
    match diff_dirs(a, b, opts) {
        Ok(report) => {
            for w in &report.warnings {
                println!("warning: {w}");
            }
            if report.clean() {
                println!(
                    "diff clean: {} leaves compared within tolerance {}",
                    report.compared, opts.tolerance
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "{} delta(s) over {} compared leaves (tolerance {}):",
                    report.deltas.len(),
                    report.compared,
                    opts.tolerance
                );
                for d in &report.deltas {
                    println!("  {d}");
                }
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("dashboard: {e}");
            ExitCode::from(2)
        }
    }
}
