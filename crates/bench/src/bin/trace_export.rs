//! `trace_export` — exports the cycle-domain timeline of a seeded
//! multi-lane faulted run as Chrome Trace Event Format JSON.
//!
//! Load the output in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`: one track per lane (episodes as duration spans,
//! detections and faults as instants), plus uncore tracks for strikes,
//! per-bank L2 conflict counters, and checkpoint-buffer drains. The
//! `ts` field is the simulated cycle, so the file is byte-identical
//! across same-seed reruns.
//!
//! Environment: `UNSYNC_LANES` / `UNSYNC_INSTS` / `UNSYNC_SEED` shape
//! the scenario (defaults 8 / 2000 / 11); `UNSYNC_TRACE_OUT` names the
//! output file (default `TRACE_timeline.json`); `UNSYNC_METRICS_FILE`
//! additionally dumps the metrics registry — including the host-domain
//! `prof.*` histograms — after the export.

use unsync_bench::runlog;
use unsync_bench::timeline::TimelineScenarioConfig;
use unsync_bench::Json;
use unsync_obs::prof;

fn main() {
    let cfg = TimelineScenarioConfig::from_env();
    let timeline = {
        let _t = prof::scope("trace_export.build");
        unsync_bench::build_timeline(&cfg)
    };
    let json = {
        let _t = prof::scope("trace_export.render");
        timeline.chrome_trace()
    };
    validate(&json);

    let path =
        std::env::var("UNSYNC_TRACE_OUT").unwrap_or_else(|_| "TRACE_timeline.json".to_string());
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    runlog::export_metrics();

    println!(
        "trace_export: {} — {} lanes, {} episodes, {} strikes, {} bank conflicts, end cycle {}",
        path,
        timeline.lanes.len(),
        timeline.episode_count(),
        timeline.strikes.len(),
        timeline.bank_conflicts.len(),
        timeline.end_cycle()
    );
    println!("  wrote {} bytes to {path}", json.len());
}

/// Re-parses the rendered trace with the in-repo JSON parser and
/// asserts the fields Perfetto needs are present. Panics (non-zero
/// exit) on any violation, so CI can run the binary as a smoke test.
fn validate(text: &str) {
    let v = Json::parse(text).expect("exported trace must be valid JSON");
    let events = match v.get("traceEvents") {
        Some(Json::Arr(events)) => events,
        _ => panic!("trace must carry a traceEvents array"),
    };
    assert!(
        !events.is_empty(),
        "traceEvents must at least carry track metadata"
    );
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("event {i} lacks ph"));
        assert!(e.get("pid").is_some(), "event {i} lacks pid");
        match ph {
            "M" => assert!(e.get("name").is_some(), "metadata event {i} lacks name"),
            "B" | "E" | "i" | "C" => {
                assert!(
                    e.get("ts").and_then(Json::as_u64).is_some(),
                    "event {i} lacks integer ts"
                );
                assert!(e.get("tid").is_some(), "event {i} lacks tid");
            }
            other => panic!("event {i} has unexpected phase {other:?}"),
        }
    }
    let other = v.get("otherData").expect("trace must carry otherData");
    assert_eq!(
        other.get("ts_unit").and_then(Json::as_str),
        Some("cycle"),
        "otherData.ts_unit must be \"cycle\""
    );
    for key in [
        "name",
        "lanes",
        "end_cycle",
        "episodes",
        "strikes",
        "bank_conflicts",
    ] {
        assert!(other.get(key).is_some(), "otherData lacks {key}");
    }
}
