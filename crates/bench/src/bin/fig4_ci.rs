//! Fig. 4 with statistical rigor: the per-benchmark overheads across
//! several workload seeds, reported as mean ± 95 % CI.
//!
//! The single-seed `fig4` binary is deterministic; this one shows how
//! much of each number is workload-draw noise.

use unsync_bench::{experiments, stats, ExperimentConfig, Json, RunLog, Runner};
use unsync_workloads::Benchmark;

fn summary_json(s: &stats::Summary) -> Json {
    Json::obj()
        .field("n", s.n)
        .field("mean", s.mean)
        .field("stddev", s.stddev)
        .field("ci95", s.ci95)
}

fn main() {
    let base = ExperimentConfig::from_env();
    let seeds: Vec<u64> = (base.seed..base.seed + 5).collect();
    println!(
        "Fig. 4 across {} seeds ({} instructions each): overhead vs baseline, mean ± 95% CI",
        seeds.len(),
        base.inst_count
    );

    let mut log = RunLog::start("fig4_ci", base);

    // One full fig4 per seed, in parallel.
    let runs = stats::multi_seed(&seeds, |seed| {
        experiments::fig4(ExperimentConfig { seed, ..base })
    });

    println!(
        "{:<14} {:>20} {:>20}",
        "benchmark", "Reunion overhead %", "UnSync overhead %"
    );
    let mut all_r = Vec::new();
    let mut all_u = Vec::new();
    for (i, bench) in Benchmark::all().iter().enumerate() {
        let r: Vec<f64> = runs
            .iter()
            .map(|rows| rows[i].reunion_overhead * 100.0)
            .collect();
        let u: Vec<f64> = runs
            .iter()
            .map(|rows| rows[i].unsync_overhead * 100.0)
            .collect();
        let (sr, su) = (stats::Summary::of(&r), stats::Summary::of(&u));
        all_r.extend_from_slice(&r);
        all_u.extend_from_slice(&u);
        println!(
            "{:<14} {:>20} {:>20}",
            bench.name(),
            sr.display(),
            su.display()
        );
        log.record(
            Json::obj()
                .field("benchmark", bench.name())
                .field("reunion_overhead_pct", summary_json(&sr))
                .field("unsync_overhead_pct", summary_json(&su)),
        );
    }
    let (sr, su) = (stats::Summary::of(&all_r), stats::Summary::of(&all_u));
    println!("{:<14} {:>20} {:>20}", "ALL", sr.display(), su.display());
    log.record(
        Json::obj()
            .field("benchmark", "ALL")
            .field("reunion_overhead_pct", summary_json(&sr))
            .field("unsync_overhead_pct", summary_json(&su)),
    );
    if let Some(p) = log.write(Runner::from_env().workers()) {
        eprintln!("run log: {}", p.display());
    }
}
