//! Regenerates Fig. 4: per-benchmark runtime overhead of Reunion and
//! UnSync over the baseline CMP (serializing-instruction sensitivity).

use unsync_bench::{experiments, render, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let rows = experiments::fig4(cfg);
    print!("{}", render::fig4(&rows));
    println!();
    println!(
        "Paper claims: Reunion averages ~8 % and exceeds 10 % on bzip2 (2 % serializing),"
    );
    println!("ammp (1.7 %) and galgel (1 %, worst — ROB occupancy); UnSync stays ~2 %.");
}
