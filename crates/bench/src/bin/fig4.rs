//! Regenerates Fig. 4: per-benchmark runtime overhead of Reunion and
//! UnSync over the baseline CMP (serializing-instruction sensitivity).

use unsync_bench::{experiments, render, ExperimentConfig, RunLog, Runner};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let mut log = RunLog::start("fig4", cfg);
    let rows = experiments::fig4(cfg);
    print!("{}", render::fig4(&rows));
    for r in &rows {
        log.record(render::jsonl::fig4(r));
    }
    if let Some(p) = log.write(Runner::from_env().workers()) {
        eprintln!("run log: {}", p.display());
    }
    println!();
    println!("Paper claims: Reunion averages ~8 % and exceeds 10 % on bzip2 (2 % serializing),");
    println!("ammp (1.7 %) and galgel (1 %, worst — ROB occupancy); UnSync stays ~2 %.");
}
