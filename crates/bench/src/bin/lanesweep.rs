//! The many-core lane sweep: UnSync pairs 2 → 1000 over a banked,
//! contended shared L2 (see `unsync_bench::lanesweep`).
//!
//! Prints one row per lane count (throughput, per-lane IPC, L2
//! bank-conflict stall share, MTTR under contention), writes the
//! `lanesweep.jsonl` run log (dashboard-diffable) and the
//! `BENCH_lanesweep.json` summary.
//!
//! Environment knobs: `UNSYNC_LANES` (comma-separated lane counts,
//! default the full 2 → 1000 sweep), `UNSYNC_INSTS` (instructions per
//! lane), `UNSYNC_SEED`, and `UNSYNC_WORKLOAD` (any synthetic
//! benchmark name such as `gzip`, or a real-ISA kernel such as
//! `kernel:crc32`; default `gzip`).

use unsync_bench::lanesweep::{run_sweep, summary_json, sweep_log, LaneSweepConfig};
use unsync_workloads::WorkloadSpec;

/// Where the machine-readable summary lands (workspace root under CI).
const OUT_PATH: &str = "BENCH_lanesweep.json";

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn main() {
    let seed = env_u64("UNSYNC_SEED").unwrap_or(11);
    let mut cfg = LaneSweepConfig::full(seed);
    if let Some(insts) = env_u64("UNSYNC_INSTS") {
        cfg.insts_per_lane = insts as usize;
    }
    if let Ok(spec) = std::env::var("UNSYNC_LANES") {
        let counts: Vec<usize> = spec
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect();
        if !counts.is_empty() {
            cfg.lane_counts = counts;
        }
    }
    if let Ok(name) = std::env::var("UNSYNC_WORKLOAD") {
        match WorkloadSpec::parse(name.trim()) {
            Ok(spec) => cfg.workload = spec,
            Err(e) => {
                eprintln!("error: UNSYNC_WORKLOAD: {e}");
                std::process::exit(2);
            }
        }
    }
    println!(
        "Lane sweep over contended shared L2 ({} × {} insts/lane, seed {}, {} banks × {}-cycle ports, {} MSHRs)",
        cfg.workload.name(),
        cfg.insts_per_lane,
        cfg.seed,
        cfg.contention.banks,
        cfg.contention.bank_busy_beats,
        cfg.contention.mshrs
    );
    println!(
        "{:>6} {:>10} {:>12} {:>9} {:>10} {:>10} {:>11} {:>9} {:>9}",
        "lanes",
        "thru IPC",
        "IPC/lane",
        "conflict",
        "stall cyc",
        "avg stall",
        "stall share",
        "L2 miss",
        "MTTR"
    );
    let rows = run_sweep(&cfg);
    for r in &rows {
        println!(
            "{:>6} {:>10.3} {:>12.4} {:>8.2}% {:>10} {:>10.2} {:>10.3}% {:>8.2}% {:>9.1}",
            r.lanes,
            r.throughput_ipc,
            r.per_lane_ipc,
            r.l2_conflict_rate * 100.0,
            r.l2_stall_cycles,
            r.avg_stall_cycles,
            r.stall_share * 100.0,
            r.l2_miss_rate * 100.0,
            r.mttr_cycles
        );
    }
    if let Some((knee, _)) = rows
        .windows(2)
        .map(|w| (w[1].lanes, w[0].per_lane_ipc / w[1].per_lane_ipc.max(1e-12)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite ratios"))
    {
        println!("\n(largest per-lane IPC drop lands at {knee} lanes — the contention knee)");
    }

    let mut text = summary_json(&cfg, &rows).render();
    text.push('\n');
    match std::fs::write(OUT_PATH, &text) {
        Ok(()) => println!("wrote {OUT_PATH} ({} lane counts)", rows.len()),
        Err(e) => {
            eprintln!("error: could not write {OUT_PATH}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(p) = sweep_log(&cfg, &rows).write(1) {
        eprintln!("run log: {}", p.display());
    }
}
