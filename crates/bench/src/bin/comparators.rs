//! Error-free overhead of every redundancy discipline in the repository,
//! side by side: tight lockstep (§II mainframes), Reunion, coarse
//! checkpointing (Smolens 2004) and UnSync.

use unsync_bench::{experiments, render, ExperimentConfig, RunLog};

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!(
        "Error-free runtime overhead vs baseline ({} instructions)",
        cfg.inst_count
    );
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>10}",
        "benchmark", "lockstep", "Reunion", "checkpoint", "UnSync"
    );
    let mut log = RunLog::start("comparators", cfg);
    for row in &experiments::comparators(cfg) {
        log.record(render::jsonl::comparators(row));
        println!(
            "{:<12} {:>9.2}% {:>9.2}% {:>11.2}% {:>9.2}%",
            row.bench,
            row.lockstep_overhead * 100.0,
            row.reunion_overhead * 100.0,
            row.checkpoint_overhead * 100.0,
            row.unsync_overhead * 100.0
        );
    }
    if let Some(p) = log.write(1) {
        eprintln!("run log: {}", p.display());
    }
    println!("\nReading: runtime coupling orders by synchronization frequency, but runtime");
    println!("is not the whole story. Lockstep's modest cycle overhead hides its real cost:");
    println!("it only works if both cores see bit-identical timing forever (no independent");
    println!("DVFS, recovery, or asynchronous events) — the scaling burden §II cites for");
    println!("abandoning it. Reunion/checkpointing relax that but tax every instruction;");
    println!("UnSync decouples completely and bets on errors being rare (its per-error");
    println!("recovery is the most expensive — see --bin ablation_recovery).");
}
