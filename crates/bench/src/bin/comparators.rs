//! Error-free overhead of every redundancy discipline in the repository,
//! side by side: tight lockstep (§II mainframes), Reunion, coarse
//! checkpointing (Smolens 2004) and UnSync.

use unsync_bench::{ExperimentConfig, Json, RunLog};
use unsync_core::{UnsyncConfig, UnsyncPair};
use unsync_mem::WritePolicy;
use unsync_reunion::{CheckpointConfig, CheckpointHooks, LockstepPair, ReunionConfig, ReunionPair};
use unsync_sim::{run_baseline, run_stream, CoreConfig};
use unsync_workloads::{Benchmark, WorkloadGen};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let benches = [
        Benchmark::Bzip2,
        Benchmark::Galgel,
        Benchmark::Sha,
        Benchmark::Mcf,
        Benchmark::Qsort,
    ];
    println!(
        "Error-free runtime overhead vs baseline ({} instructions)",
        cfg.inst_count
    );
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>10}",
        "benchmark", "lockstep", "Reunion", "checkpoint", "UnSync"
    );
    let mut log = RunLog::start("comparators", cfg);
    for bench in benches {
        let t = WorkloadGen::new(bench, cfg.inst_count, cfg.seed).collect_trace();
        let mut s = WorkloadGen::new(bench, cfg.inst_count, cfg.seed);
        let base = run_baseline(CoreConfig::table1(), &mut s)
            .core
            .last_commit_cycle as f64;
        let pct = |cycles: u64| (cycles as f64 / base - 1.0) * 100.0;

        let lockstep = LockstepPair::new(CoreConfig::table1()).run(&t).cycles;
        let reunion = ReunionPair::new(CoreConfig::table1(), ReunionConfig::paper_baseline())
            .run(&t, &[])
            .cycles;
        let ckpt = {
            let mut s = WorkloadGen::new(bench, cfg.inst_count, cfg.seed);
            let mut hooks = CheckpointHooks::new(CheckpointConfig::default());
            run_stream(
                CoreConfig::table1(),
                &mut s,
                &mut hooks,
                WritePolicy::WriteThrough,
            )
            .core
            .last_commit_cycle
        };
        let unsync = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline())
            .run(&t, &[])
            .cycles;
        log.record(
            Json::obj()
                .field("benchmark", bench.name())
                .field("lockstep_overhead_pct", pct(lockstep))
                .field("reunion_overhead_pct", pct(reunion))
                .field("checkpoint_overhead_pct", pct(ckpt))
                .field("unsync_overhead_pct", pct(unsync)),
        );
        println!(
            "{:<12} {:>9.2}% {:>9.2}% {:>11.2}% {:>9.2}%",
            bench.name(),
            pct(lockstep),
            pct(reunion),
            pct(ckpt),
            pct(unsync)
        );
    }
    if let Some(p) = log.write(1) {
        eprintln!("run log: {}", p.display());
    }
    println!("\nReading: runtime coupling orders by synchronization frequency, but runtime");
    println!("is not the whole story. Lockstep's modest cycle overhead hides its real cost:");
    println!("it only works if both cores see bit-identical timing forever (no independent");
    println!("DVFS, recovery, or asynchronous events) — the scaling burden §II cites for");
    println!("abandoning it. Reunion/checkpointing relax that but tax every instruction;");
    println!("UnSync decouples completely and bets on errors being rare (its per-error");
    println!("recovery is the most expensive — see --bin ablation_recovery).");
}
