//! Error-free overhead of every redundancy discipline in the repository,
//! side by side: tight lockstep (§II mainframes), Reunion, coarse
//! checkpointing (Smolens 2004), UnSync, majority-voting TMR,
//! FlexStep-style granularity (128-instruction window) and the
//! SECDED-only non-redundant floor.

use unsync_bench::{experiments, render, ExperimentConfig, RunLog, Runner};
use unsync_core::{UnsyncConfig, UnsyncGroup, UnsyncPair, UnsyncSystem};
use unsync_fault::{FaultKind, FaultSite, FaultTarget, PairFault};
use unsync_sim::CoreConfig;
use unsync_workloads::{Benchmark, SyntheticSource, WorkloadSource};

/// Small faulted runs of the three runners the error-free comparator
/// table does not exercise — a struck pair, a 3-way group, and a
/// two-pair system — so one `comparators` invocation leaves metrics
/// (including recovery MTTR histograms) for every scheme in the
/// dashboard. These contribute nothing to the record rows: the golden
/// comparator table stays byte-identical; the extra schemes surface
/// only through the nondeterministic `meta` metrics snapshot.
fn dashboard_coverage_runs(cfg: ExperimentConfig) {
    let insts = cfg.inst_count.min(5_000);
    let trace = SyntheticSource::new(Benchmark::Gzip, insts, cfg.seed).trace();
    let strike = |at| PairFault {
        at,
        core: 0,
        site: FaultSite {
            target: FaultTarget::RegisterFile,
            bit_offset: 5,
        },
        kind: FaultKind::Single,
    };
    let faults = [strike(insts / 3), strike(2 * insts / 3)];
    let ccfg = CoreConfig::table1();
    let ucfg = UnsyncConfig::paper_baseline();
    let _ = UnsyncPair::new(ccfg, ucfg).run(&trace, &faults);
    let _ = UnsyncGroup::new(ccfg, ucfg, 3).run(&trace, &faults);
    let short = SyntheticSource::new(Benchmark::Qsort, insts, cfg.seed).trace();
    let _ = UnsyncSystem::new(ccfg, ucfg).run(&[trace, short]);
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!(
        "Error-free runtime overhead vs baseline ({} instructions)",
        cfg.inst_count
    );
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "lockstep", "Reunion", "checkpoint", "UnSync", "TMR", "FlexStep", "SECDED"
    );
    let mut log = RunLog::start("comparators", cfg);
    let rows = experiments::comparators(cfg);
    // The original four columns keep their frozen record shape (golden
    // rows stay byte-identical); the new schemes append their own rows.
    for row in &rows {
        log.record(render::jsonl::comparators(row));
    }
    for row in &rows {
        log.record(render::jsonl::comparator_schemes(row));
        println!(
            "{:<12} {:>9.2}% {:>9.2}% {:>11.2}% {:>9.2}% {:>9.2}% {:>9.2}% {:>9.2}%",
            row.bench,
            row.lockstep_overhead * 100.0,
            row.reunion_overhead * 100.0,
            row.checkpoint_overhead * 100.0,
            row.unsync_overhead * 100.0,
            row.tmr_overhead * 100.0,
            row.flex_overhead * 100.0,
            row.secded_overhead * 100.0
        );
    }
    // Kernel-workload scheme rows: the same three schemes and strike
    // schedule as the synthetic scheme-values study, but over measured
    // real-ISA kernel traces. Appended after the comparator records so
    // every pre-existing row keeps its position.
    for row in &experiments::kernel_scheme_values_on(Runner::from_env(), cfg) {
        log.record(render::jsonl::scheme_values(row));
    }
    dashboard_coverage_runs(cfg);
    if let Some(p) = log.write(1) {
        eprintln!("run log: {}", p.display());
    }
    println!("\nReading: runtime coupling orders by synchronization frequency, but runtime");
    println!("is not the whole story. Lockstep's modest cycle overhead hides its real cost:");
    println!("it only works if both cores see bit-identical timing forever (no independent");
    println!("DVFS, recovery, or asynchronous events) — the scaling burden §II cites for");
    println!("abandoning it. Reunion/checkpointing relax that but tax every instruction;");
    println!("UnSync decouples completely and bets on errors being rare (its per-error");
    println!("recovery is the most expensive — see --bin ablation_recovery).");
    println!("The new columns bracket the space: TMR pays ~3x resources to vote errors");
    println!("away with zero rollback, FlexStep tunes the compare interval at runtime,");
    println!("and SECDED-only shows what a lone ECC-protected core gets you for free.");
}
