//! The batched campaign driver: runs a roec-style uncore strike grid
//! and a scheme-comparator grid through the streaming
//! [`unsync_bench::campaign`] engine, benchmarks the engine against
//! the sequential `run_collected` reference at 1/2/8 workers, asserts
//! the normalized JSONL is byte-identical across all of them, and
//! writes `BENCH_campaign.json`.
//!
//! Canonical JSONL logs land in the results directory as
//! `campaign_uncore.jsonl` / `campaign_compare.jsonl` (the dashboard
//! renders their meta lines as the campaign table); intermediate
//! 1/2-worker runs use a `.partial` suffix the dashboard ignores and
//! are deleted before exit.
//!
//! Environment knobs: `UNSYNC_SEED` (base seed, default 11),
//! `UNSYNC_CAMPAIGN_SMOKE=1` (tiny CI grids),
//! `UNSYNC_CAMPAIGN_RESUME_ONLY=1` (skip the benchmark sweep; resume
//! the canonical logs in place — the CI kill-then-resume check),
//! `UNSYNC_CAMPAIGN_OUT` (summary path, default
//! `BENCH_campaign.json`), `UNSYNC_WORKERS` (resume-only worker
//! count), and `UNSYNC_RESULTS_DIR`.

use std::path::PathBuf;

use unsync_bench::campaign::{
    normalized_lines, run_collected, run_mapped, CampaignEngine, CampaignGrid,
};
use unsync_bench::dashboard::histogram_percentile;
use unsync_bench::roec_uncore::SCHEMES;
use unsync_bench::runlog::{self, metrics_snapshot_json, Json};
use unsync_bench::Runner;
use unsync_fault::uncore::StrikePlan;
use unsync_mem::L2ContentionConfig;
use unsync_workloads::WorkloadSpec;

/// Where the machine-readable summary lands (workspace root under CI).
const DEFAULT_OUT_PATH: &str = "BENCH_campaign.json";

/// Engine worker counts benchmarked, last one canonical
/// (`UNSYNC_CAMPAIGN_SWEEP`, comma-separated, overrides).
const WORKER_SWEEP: [usize; 3] = [1, 2, 8];

fn worker_sweep() -> Vec<usize> {
    let Ok(raw) = std::env::var("UNSYNC_CAMPAIGN_SWEEP") else {
        return WORKER_SWEEP.to_vec();
    };
    let parsed: Vec<usize> = raw
        .split(',')
        .filter_map(|p| p.trim().parse().ok())
        .filter(|&w| w > 0)
        .collect();
    if parsed.is_empty() {
        WORKER_SWEEP.to_vec()
    } else {
        parsed
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).is_ok_and(|v| v.trim() == "1")
}

fn workload(name: &str) -> WorkloadSpec {
    WorkloadSpec::parse(name).expect("campaign workload list is static")
}

/// The roec-style reference grid: every uncore structure struck under
/// the three bracketing schemes, shared-L2 contention on.
fn uncore_grid(seed: u64, smoke: bool) -> CampaignGrid {
    let (inst_count, strikes_per_cell) = if smoke { (120, 1) } else { (400, 8) };
    CampaignGrid {
        name: "campaign_uncore".into(),
        inst_count,
        seeds: vec![seed],
        workloads: vec![workload("gzip")],
        schemes: SCHEMES.to_vec(),
        strikes: Some(StrikePlan::all_uncore(strikes_per_cell, inst_count * 2)),
        contention: Some(L2ContentionConfig::many_core()),
    }
}

/// The scheme-comparator grid: fault-free overhead of every comparator
/// across workloads × seeds.
fn compare_grid(seed: u64, smoke: bool) -> CampaignGrid {
    if smoke {
        CampaignGrid {
            name: "campaign_compare".into(),
            inst_count: 120,
            seeds: vec![seed],
            workloads: vec![workload("gzip")],
            schemes: vec!["lockstep", "unsync_pair", "tmr_vote"],
            strikes: None,
            contention: None,
        }
    } else {
        CampaignGrid {
            name: "campaign_compare".into(),
            inst_count: 400,
            seeds: vec![seed, seed + 1],
            workloads: vec![workload("gzip"), workload("kernel:qsort")],
            schemes: vec![
                "lockstep",
                "reunion",
                "checkpoint",
                "unsync_pair",
                "tmr_vote",
                "flex",
                "secded_only",
            ],
            strikes: None,
            contention: None,
        }
    }
}

/// Reads one counter out of a rendered metrics snapshot.
fn counter(metrics: &Json, name: &str) -> u64 {
    metrics.get(name).and_then(Json::as_u64).unwrap_or(0)
}

fn median_ms(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn repeats(smoke: bool) -> usize {
    env_u64("UNSYNC_CAMPAIGN_REPEATS")
        .map(|n| n.max(1) as usize)
        .unwrap_or(if smoke { 1 } else { 3 })
}

/// Benchmarks one grid: sequential reference, then the engine at each
/// sweep worker count (canonical run last, into `<name>.jsonl`),
/// asserting every normalized output equals the reference. Returns the
/// grid's summary row.
fn bench_grid(grid: &CampaignGrid, smoke: bool) -> Json {
    let dir = runlog::results_dir();
    let reps = repeats(smoke);
    println!(
        "grid {}: {} jobs ({} insts, median of {reps})",
        grid.name,
        grid.len(),
        grid.inst_count
    );

    // Single-thread sequential reference (pre-engine cost model): the
    // normalized-output oracle every other path must match.
    let mut seq_samples = Vec::new();
    let mut reference = Vec::new();
    for _ in 0..reps {
        let started = std::time::Instant::now();
        reference = normalized_lines(&run_collected(grid).join("\n"));
        seq_samples.push(started.elapsed().as_millis() as u64);
    }
    let seq_ms = median_ms(&mut seq_samples);
    println!("  sequential loop: {seq_ms} ms");

    let sweep = worker_sweep();
    let canonical_workers = *sweep.last().expect("sweep is non-empty");

    // The pre-engine parallel path: `Runner::map` barrier collection at
    // the canonical worker count, trace + golden recomputed per job.
    let mapped_runner = Runner::new(canonical_workers);
    let mut map_samples = Vec::new();
    for _ in 0..reps {
        let started = std::time::Instant::now();
        let lines = run_mapped(grid, &mapped_runner);
        map_samples.push(started.elapsed().as_millis() as u64);
        if normalized_lines(&lines.join("\n")) != reference {
            eprintln!("error: {} Runner::map path diverged", grid.name);
            std::process::exit(1);
        }
    }
    let map_ms = median_ms(&mut map_samples);
    println!("  runner_map x{canonical_workers}: {map_ms} ms");

    let mut engine_rows = Vec::new();
    for (i, &workers) in sweep.iter().enumerate() {
        let canonical = i == sweep.len() - 1;
        let path = if canonical {
            dir.join(format!("{}.jsonl", grid.name))
        } else {
            dir.join(format!("{}.w{workers}.partial", grid.name))
        };
        let mut samples = Vec::new();
        let mut jobs_per_sec = 0.0f64;
        for _ in 0..reps {
            let _ = std::fs::remove_file(&path);
            let report = match CampaignEngine::new(workers).run_streaming(grid, &path) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("error: campaign {} failed: {e}", grid.name);
                    std::process::exit(1);
                }
            };
            let text = std::fs::read_to_string(&path).unwrap_or_default();
            if normalized_lines(&text) != reference {
                eprintln!(
                    "error: {} at {workers} workers diverged from the sequential reference",
                    grid.name
                );
                std::process::exit(1);
            }
            samples.push(report.wall_ms);
            jobs_per_sec = jobs_per_sec.max(report.jobs_per_sec());
        }
        let ms = median_ms(&mut samples);
        println!(
            "  engine x{workers}: {ms} ms (best {jobs_per_sec:.1} jobs/sec){}",
            if canonical { "  [canonical]" } else { "" }
        );
        engine_rows.push(
            Json::obj()
                .field("workers", workers as u64)
                .field("ms", ms)
                .field("jobs_per_sec", jobs_per_sec),
        );
        if !canonical {
            let _ = std::fs::remove_file(&path);
        }
    }

    let metrics = metrics_snapshot_json();
    let depth_p95 = metrics
        .get("campaign.queue_depth_samples")
        .and_then(|h| histogram_percentile(h, 0.95))
        .unwrap_or(0.0);
    Json::obj()
        .field("name", grid.name.as_str())
        .field("jobs", grid.len() as u64)
        .field("seq_ms", seq_ms)
        .field("runner_map_workers", canonical_workers as u64)
        .field("runner_map_ms", map_ms)
        .field("engine", Json::Arr(engine_rows))
        .field(
            "baseline_sim_runs",
            counter(&metrics, "runner.baseline_sim_runs"),
        )
        .field(
            "baseline_cache_hits",
            counter(&metrics, "runner.baseline_cache_hits"),
        )
        .field(
            "golden_sim_runs",
            counter(&metrics, "runner.golden_sim_runs"),
        )
        .field(
            "golden_cache_hits",
            counter(&metrics, "runner.golden_cache_hits"),
        )
        .field(
            "cache_lock_waits",
            counter(&metrics, "runner.cache_lock_waits"),
        )
        .field(
            "backpressure_stalls",
            counter(&metrics, "campaign.backpressure_stalls"),
        )
        .field("steals", counter(&metrics, "campaign.steals"))
        .field("queue_depth_p95", depth_p95)
}

/// Resume-only mode: continue the canonical logs in place (used by the
/// CI kill-then-resume check). No benchmarking, no summary JSON.
fn resume_only(grids: &[CampaignGrid]) {
    let dir = runlog::results_dir();
    let workers = Runner::from_env().workers();
    for grid in grids {
        let path = dir.join(format!("{}.jsonl", grid.name));
        match CampaignEngine::new(workers).run_streaming(grid, &path) {
            Ok(report) => println!(
                "resumed {}: {} done, {} run, {} skipped",
                path.display(),
                report.jobs_total,
                report.jobs_run,
                report.jobs_skipped
            ),
            Err(e) => {
                eprintln!("error: resume {} failed: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

fn main() {
    let seed = env_u64("UNSYNC_SEED").unwrap_or(11);
    let smoke = env_flag("UNSYNC_CAMPAIGN_SMOKE");
    let grids = [uncore_grid(seed, smoke), compare_grid(seed, smoke)];

    if env_flag("UNSYNC_CAMPAIGN_RESUME_ONLY") {
        resume_only(&grids);
        runlog::export_metrics();
        return;
    }

    let rows: Vec<Json> = grids.iter().map(|g| bench_grid(g, smoke)).collect();

    let out_path = std::env::var("UNSYNC_CAMPAIGN_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(DEFAULT_OUT_PATH));
    let doc = Json::obj()
        .field("schema", 1u64)
        .field("seed", seed)
        .field("smoke", u64::from(smoke))
        .field("grids", Json::Arr(rows));
    let mut text = doc.render();
    text.push('\n');
    match std::fs::write(&out_path, &text) {
        Ok(()) => println!("wrote {}", out_path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", out_path.display());
            std::process::exit(1);
        }
    }
    runlog::export_metrics();
}
