//! Workload characterization: baseline IPC, cache miss rates and stall
//! breakdown per benchmark — the substrate numbers behind Figures 4–6.

use unsync_bench::{ExperimentConfig, Json, RunLog};
use unsync_sim::{run_baseline, CoreConfig};
use unsync_workloads::{Benchmark, WorkloadGen};

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!(
        "Baseline workload characterization ({} instructions, seed {})",
        cfg.inst_count, cfg.seed
    );
    println!(
        "{:<14} {:>7} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "benchmark", "IPC", "L1D miss", "L2 miss", "ROB occ", "ROB sat", "IQ stalls", "ser stl"
    );
    let mut log = RunLog::start("memstats", cfg);
    for &bench in Benchmark::all() {
        let mut s = WorkloadGen::new(bench, cfg.inst_count, cfg.seed);
        let r = run_baseline(CoreConfig::table1(), &mut s);
        log.record(
            Json::obj()
                .field("benchmark", bench.name())
                .field("ipc", r.ipc())
                .field("l1d_miss_rate", r.l1d_miss_rate)
                .field("l2_miss_rate", r.l2_miss_rate)
                .field("avg_rob_occupancy", r.core.avg_rob_occupancy())
                .field("rob_saturation_fraction", r.core.rob_saturation_fraction())
                .field("iq_full_cycles", r.core.iq_full_cycles)
                .field("serialize_stall_cycles", r.core.serialize_stall_cycles),
        );
        println!(
            "{:<14} {:>7.3} {:>8.2}% {:>8.2}% {:>9.1} {:>8.1}% {:>10} {:>9}",
            bench.name(),
            r.ipc(),
            r.l1d_miss_rate * 100.0,
            r.l2_miss_rate * 100.0,
            r.core.avg_rob_occupancy(),
            r.core.rob_saturation_fraction() * 100.0,
            r.core.iq_full_cycles,
            r.core.serialize_stall_cycles
        );
    }
    println!("\n(ROB sat = fraction of dispatches finding the ROB completely full — the");
    println!("precondition for Fig. 5's CHECK-stage back-pressure argument.)");
    if let Some(p) = log.write(1) {
        eprintln!("run log: {}", p.display());
    }
}
