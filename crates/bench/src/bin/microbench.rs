//! Hot-path microbenchmarks for the shared `RedundantDriver` loop.
//!
//! Benches each layer of the per-instruction path — the `ArchMemory`
//! word store, the forwarding-heavy pending-store tracking exercised by
//! rollback schemes, full pair runs, the multi-lane `run_system`
//! scheduler at 2/8/16 lanes, the discrete-event queue itself (bare
//! components and a contended-L2 system run), event/metric
//! publication, and the campaign engine's dispatch path (grid
//! expansion, per-job cost with a cached golden, and the bounded
//! writer-queue cycle), plus the observability layer (scoped `prof`
//! timer overhead, timeline model build, Chrome-trace render) — and writes
//! the per-bench statistics to `BENCH_driver.json` so successive PRs
//! have a machine-readable perf trajectory (see EXPERIMENTS.md,
//! "Driver microbenchmarks").
//!
//! `UNSYNC_BENCH_MS` scales the per-bench budget (CI smoke uses 20 ms);
//! `UNSYNC_BENCH_FILTER` selects a subset by substring.

use unsync_bench::microbench::{bb, Bench, BenchResult};
use unsync_bench::runlog::Json;
use unsync_core::{UnsyncConfig, UnsyncPair, UnsyncSystem};
use unsync_isa::{golden_run, ArchMemory};
use unsync_reunion::{ReunionConfig, ReunionPair};
use unsync_sim::CoreConfig;
use unsync_workloads::{Benchmark, Kernel, SyntheticSource, WorkloadSource};

/// Where the machine-readable results land (workspace root under CI).
const OUT_PATH: &str = "BENCH_driver.json";

fn mem_benches(results: &mut Vec<BenchResult>) {
    let mut g = Bench::group("mem");
    // A working set of 8 Ki words over 128 pages: every write lands in
    // an already-allocated page after the first pass, like a trace's
    // steady state.
    g.bench("archmem/write_8k_words", || {
        let mut m = ArchMemory::new();
        for i in 0..8_192u64 {
            m.write(i * 8, i);
        }
        bb(m.footprint_words())
    });
    let mut warm = ArchMemory::new();
    for i in 0..8_192u64 {
        warm.write(i * 8, i);
    }
    g.bench("archmem/read_hit_8k", || {
        let mut acc = 0u64;
        for i in 0..8_192u64 {
            acc = acc.wrapping_add(warm.read(bb(i * 8)));
        }
        bb(acc)
    });
    g.bench("archmem/read_cold_8k", || {
        let mut acc = 0u64;
        for i in 0..8_192u64 {
            acc = acc.wrapping_add(warm.read(bb(0x4000_0000 + i * 8)));
        }
        bb(acc)
    });
    let t = SyntheticSource::new(Benchmark::Gzip, 4_000, 11).trace();
    g.bench("archmem/golden_run_4k", || {
        bb(golden_run(&t)).1.footprint_words()
    });
    results.extend(g.into_results());
}

fn driver_benches(results: &mut Vec<BenchResult>) {
    let mut g = Bench::group("driver");
    let t = SyntheticSource::new(Benchmark::Gzip, 4_000, 11).trace();
    let qsort = SyntheticSource::new(Benchmark::Qsort, 4_000, 11).trace();
    let unsync = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline());
    g.bench("pair_run/gzip_4k", || bb(unsync.run(&t, &[])).core.cycles);
    // Qsort is the store-heaviest workload: the CB and pending-store
    // paths dominate.
    g.bench("pair_run/qsort_4k", || {
        bb(unsync.run(&qsort, &[])).core.cycles
    });
    // Reunion rolls back per interval, so its pending set grows to the
    // fingerprint interval — the forwarding-heavy case.
    let reunion = ReunionPair::new(CoreConfig::table1(), ReunionConfig::paper_baseline());
    g.bench("reunion_run/qsort_4k", || {
        bb(reunion.run(&qsort, &[])).core.cycles
    });
    results.extend(g.into_results());
}

fn system_benches(results: &mut Vec<BenchResult>) {
    let mut g = Bench::group("system");
    for lanes in [2usize, 8, 16] {
        let traces: Vec<_> = (0..lanes)
            .map(|p| SyntheticSource::new(Benchmark::Gzip, 1_000, 11 + p as u64).trace())
            .collect();
        let sys = UnsyncSystem::new(CoreConfig::table1(), UnsyncConfig::paper_baseline());
        g.bench(&format!("system_run/{lanes}_lanes_1k"), || {
            bb(sys.run(&traces)).pairs.len()
        });
    }
    results.extend(g.into_results());
}

fn sched_benches(results: &mut Vec<BenchResult>) {
    use unsync_exec::sched::{self, Component};
    use unsync_exec::RedundantDriver;
    use unsync_mem::{L2ContentionConfig, WritePolicy};

    /// A toy component hopping `left` times with an id-dependent
    /// stride: exercises the queue's pop/reschedule cycle with nothing
    /// else on the profile.
    struct Hopper {
        id: usize,
        t: u64,
        left: u32,
    }
    impl Component for Hopper {
        type Ctx = u64;
        fn next_tick(&self) -> Option<u64> {
            (self.left > 0).then_some(self.t)
        }
        fn tick(&mut self, _now: u64, ticks: &mut u64) {
            *ticks += 1;
            self.t += 1 + (self.id as u64 % 7);
            self.left -= 1;
        }
    }

    let mut g = Bench::group("sched");
    g.bench("queue_cycle/64_components_16k_ticks", || {
        let mut comps: Vec<Hopper> = (0..64)
            .map(|id| Hopper {
                id,
                t: id as u64,
                left: 256,
            })
            .collect();
        let mut ticks = 0u64;
        bb(sched::run(&mut comps, &mut ticks))
    });
    // The full driver loop under the banked-L2 model: scheduler +
    // contention accounting + event draining on the hot path.
    let traces: Vec<_> = (0..8usize)
        .map(|p| {
            SyntheticSource::new(Benchmark::Gzip, 500, 11 + p as u64)
                .trace_at(0x1000_0000 + p as u64 * 0x0100_0000)
        })
        .collect();
    g.bench("contended_run/8_lanes_500", || {
        let driver = RedundantDriver::new(CoreConfig::table1())
            .with_l2_contention(L2ContentionConfig::many_core());
        let mut policies: Vec<unsync_core::UnsyncPolicy> = (0..traces.len())
            .map(|p| {
                unsync_core::UnsyncPolicy::new(
                    "microbench_sched",
                    UnsyncConfig::paper_baseline(),
                    WritePolicy::WriteThrough,
                    2 * p,
                )
            })
            .collect();
        bb(driver.run_system(&mut policies, &traces)).0.len()
    });
    results.extend(g.into_results());
}

fn workload_benches(results: &mut Vec<BenchResult>) {
    // Trace production itself: the synthetic generator vs. the
    // real-ISA kernel backend (which also executes what it emits).
    let mut g = Bench::group("workloads");
    g.bench("gen/synthetic_gzip_4k", || {
        bb(SyntheticSource::new(Benchmark::Gzip, 4_000, 11).trace()).len()
    });
    g.bench("gen/kernel_qsort_4k", || {
        bb(Kernel::Qsort.source(4_000, 11).trace()).len()
    });
    results.extend(g.into_results());
}

fn event_benches(results: &mut Vec<BenchResult>) {
    use unsync_exec::{EventStream, TraceEventKind};
    let mut g = Bench::group("events");
    let mut ev = EventStream::new();
    for i in 0..100u64 {
        ev.emit_value(TraceEventKind::Detection, 0);
        ev.emit_value(TraceEventKind::RecoveryEnd, 40 + i);
        ev.emit_value(TraceEventKind::CbDrain, 3);
    }
    g.bench("publish/3_kinds", || ev.publish(bb("microbench_scheme")));
    results.extend(g.into_results());
}

fn campaign_benches(results: &mut Vec<BenchResult>) {
    use unsync_bench::campaign::{run_job, BoundedQueue};
    use unsync_bench::CampaignGrid;
    use unsync_fault::uncore::StrikePlan;
    use unsync_mem::L2ContentionConfig;
    use unsync_workloads::WorkloadSpec;

    let mut g = Bench::group("campaign");
    let grid = CampaignGrid {
        name: "microbench_campaign".into(),
        inst_count: 400,
        seeds: vec![11],
        workloads: vec![WorkloadSpec::parse("gzip").expect("static workload")],
        schemes: vec!["unsync_pair", "tmr_vote", "secded_only"],
        strikes: Some(StrikePlan::all_uncore(8, 800)),
        contention: Some(L2ContentionConfig::many_core()),
    };
    g.bench("grid/expand_144_jobs", || bb(grid.expand()).len());
    // Per-job dispatch: one strike simulation plus record rendering,
    // with the golden image memoized (the engine's steady state).
    let jobs = grid.expand();
    g.bench("dispatch/strike_job_cached_golden", || {
        bb(run_job(&grid, jobs[0], true)).len()
    });
    let compare = CampaignGrid {
        schemes: vec!["unsync_pair"],
        strikes: None,
        contention: None,
        ..grid.clone()
    };
    let cjobs = compare.expand();
    g.bench("dispatch/compare_job", || {
        bb(run_job(&compare, cjobs[0], true)).len()
    });
    // JSONL stream throughput: a full push/drain cycle of 64 record
    // chunks through the bounded writer queue (single-threaded, so the
    // cycle never blocks — this is the lock/notify overhead alone).
    g.bench("stream/queue_cycle_64_chunks", || {
        let q: BoundedQueue<String> = BoundedQueue::new(64);
        for i in 0..64u64 {
            q.push(format!("{{\"kind\":\"record\",\"row\":{i}}}"));
        }
        q.close();
        let mut out = Vec::new();
        let mut n = 0usize;
        while q.drain_into(&mut out, 32) {
            n += out.len();
            out.clear();
        }
        bb(n)
    });
    results.extend(g.into_results());
}

fn obs_benches(results: &mut Vec<BenchResult>) {
    use unsync_bench::timeline::{build_timeline, TimelineScenarioConfig};
    use unsync_obs::prof;

    let mut g = Bench::group("obs");
    // Scoped-timer overhead: what one instrumented engine phase costs
    // when nothing else happens inside the scope.
    g.bench("prof/scope_enter_exit", || {
        let t = bb(prof::scope("microbench.obs_overhead"));
        t.stop();
    });
    // The timeline model build (a faulted 2-lane contended run plus
    // event-stream conversion) and the Chrome-trace serialization.
    let cfg = TimelineScenarioConfig {
        lanes: 2,
        insts_per_lane: 400,
        seed: 11,
        strikes_per_lane: 1,
    };
    g.bench("timeline/build_2_lanes_400i", || {
        bb(build_timeline(&cfg)).episode_count()
    });
    let timeline = build_timeline(&cfg);
    g.bench("timeline/chrome_trace_render", || {
        bb(timeline.chrome_trace()).len()
    });
    results.extend(g.into_results());
}

fn write_json(results: &[BenchResult]) {
    let rows: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::obj()
                .field("name", r.name.as_str())
                .field("median_ns", r.median_ns)
                .field("mean_ns", r.mean_ns)
                .field("min_ns", r.min_ns)
                .field("samples", r.samples)
                .field("batch", r.batch)
        })
        .collect();
    let doc = Json::obj()
        .field("schema", 1u64)
        .field(
            "bench_ms",
            std::env::var("UNSYNC_BENCH_MS")
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .unwrap_or(300),
        )
        .field("results", Json::Arr(rows));
    let mut text = doc.render();
    text.push('\n');
    match std::fs::write(OUT_PATH, &text) {
        Ok(()) => println!("\nwrote {} ({} benches)", OUT_PATH, results.len()),
        Err(e) => {
            eprintln!("error: could not write {OUT_PATH}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut results = Vec::new();
    mem_benches(&mut results);
    driver_benches(&mut results);
    system_benches(&mut results);
    sched_benches(&mut results);
    workload_benches(&mut results);
    event_benches(&mut results);
    campaign_benches(&mut results);
    obs_benches(&mut results);
    assert!(
        !results.is_empty(),
        "UNSYNC_BENCH_FILTER removed every bench"
    );
    write_json(&results);
}
