//! Regenerates §VI-D: the region-of-error-coverage comparison via fault
//! injection on both architectures.

use unsync_bench::{experiments, render, ExperimentConfig, RunLog, Runner};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let mut log = RunLog::start("roec", cfg);
    let report = experiments::roec(cfg, 60);
    print!("{}", render::roec(&report));
    for rec in render::jsonl::roec(&report) {
        log.record(rec);
    }
    if let Some(p) = log.write(Runner::from_env().workers()) {
        eprintln!("run log: {}", p.display());
    }
    println!();
    println!("Paper claims: both architectures execute correctly in the presence of the");
    println!("errors they cover, but Reunion's ROEC stops at the pre-commit pipeline");
    println!("(ARF/TLB strikes escape), while UnSync covers every sequential block + L1.");
}
