//! Regenerates §VI-D: the region-of-error-coverage comparison via fault
//! injection on both architectures.

use unsync_bench::{experiments, render, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let report = experiments::roec(cfg, 60);
    print!("{}", render::roec(&report));
    println!();
    println!("Paper claims: both architectures execute correctly in the presence of the");
    println!("errors they cover, but Reunion's ROEC stops at the pre-commit pipeline");
    println!("(ARF/TLB strikes escape), while UnSync covers every sequential block + L1.");
}
