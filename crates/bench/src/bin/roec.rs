//! Regenerates §VI-D: the region-of-error-coverage comparison via fault
//! injection on both architectures — and runs the uncore vulnerability
//! campaign (ROEC 2.0, `unsync_bench::roec_uncore`): structure × scheme
//! × strike over the shared machinery, each strike classified masked /
//! detected-recovered / detected-unrecoverable / SDC against the golden
//! memory image.
//!
//! Prints both tables, writes the `roec` and `roec_uncore` JSONL run
//! logs (dashboard-diffable) and the `BENCH_roec.json` campaign
//! summary.
//!
//! Environment knobs: `UNSYNC_SEED` (campaign base seed, default 11),
//! `UNSYNC_ROEC_SMOKE=1` (CI smoke grid: short traces, 2 strikes per
//! cell), `UNSYNC_ROEC_OUT` (summary path, default `BENCH_roec.json`),
//! and `UNSYNC_WORKERS`.

use unsync_bench::roec_uncore::{campaign_log, render_table, run_campaign, summary_json};
use unsync_bench::{experiments, render, ExperimentConfig, RoecUncoreConfig, RunLog, Runner};

/// Where the machine-readable campaign summary lands (workspace root
/// under CI).
const DEFAULT_OUT_PATH: &str = "BENCH_roec.json";

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn main() {
    let cfg = ExperimentConfig::from_env();
    let mut log = RunLog::start("roec", cfg);
    let report = experiments::roec(cfg, 60);
    print!("{}", render::roec(&report));
    for rec in render::jsonl::roec(&report) {
        log.record(rec);
    }
    let runner = Runner::from_env();
    if let Some(p) = log.write(runner.workers()) {
        eprintln!("run log: {}", p.display());
    }
    println!();
    println!("Paper claims: both architectures execute correctly in the presence of the");
    println!("errors they cover, but Reunion's ROEC stops at the pre-commit pipeline");
    println!("(ARF/TLB strikes escape), while UnSync covers every sequential block + L1.");

    // ── ROEC 2.0: the uncore vulnerability campaign ──────────────────
    let seed = env_u64("UNSYNC_SEED").unwrap_or(11);
    let ucfg = if std::env::var("UNSYNC_ROEC_SMOKE").is_ok_and(|v| v.trim() == "1") {
        RoecUncoreConfig::smoke(seed)
    } else {
        RoecUncoreConfig::full(seed)
    };
    println!();
    println!(
        "Uncore vulnerability campaign ({} × {} insts, seed {}, {} strikes/cell, horizon {})",
        ucfg.benchmark.name(),
        ucfg.inst_count,
        ucfg.seed,
        ucfg.strikes_per_cell,
        ucfg.horizon()
    );
    let records = run_campaign(&ucfg, &runner);
    print!("{}", render_table(&records));
    println!();
    println!("Paper claims (§III-B1): UnSync's uncore placement — SECDED L2, parity MSHRs,");
    println!("duplicated arbiters, fingerprinted CB — leaves no live uncore strike silent,");
    println!("where TMR's sphere of replication ends at the core boundary (bare uncore).");

    let out_path =
        std::env::var("UNSYNC_ROEC_OUT").unwrap_or_else(|_| DEFAULT_OUT_PATH.to_string());
    let mut text = summary_json(&ucfg, &records).render();
    text.push('\n');
    match std::fs::write(&out_path, &text) {
        Ok(()) => println!("wrote {out_path} ({} strikes)", records.len()),
        Err(e) => {
            eprintln!("error: could not write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(p) = campaign_log(&ucfg, &records).write(runner.workers()) {
        eprintln!("run log: {}", p.display());
    }
}
