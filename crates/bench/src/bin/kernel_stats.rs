//! Measured per-kernel workload statistics (see
//! `unsync_bench::kernelstats`).
//!
//! Runs every real-ISA kernel at the configured `(inst_count, seed)`
//! point, prints the measured table, writes the committed
//! `KERNEL_stats.json` summary, and leaves a `kernelstats.jsonl` run
//! log so CI can diff a same-seed rerun at zero tolerance with
//! `dashboard --diff`.
//!
//! Environment knobs: `UNSYNC_INSTS`, `UNSYNC_SEED`,
//! `UNSYNC_RESULTS_DIR`.

use unsync_bench::kernelstats::{kernel_stats, stats_json, stats_log};
use unsync_bench::ExperimentConfig;

/// Where the machine-readable summary lands (workspace root under CI).
const OUT_PATH: &str = "KERNEL_stats.json";

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!(
        "Measured kernel-workload statistics ({} instructions, seed {})",
        cfg.inst_count, cfg.seed
    );
    println!(
        "{:<20} {:>7} {:>7} {:>7} {:>7} {:>7} {:>9} {:>7} {:>9} {:>6}",
        "kernel", "serial", "store", "load", "branch", "mispred", "lines", "words", "cycles", "IPC"
    );
    let rows = kernel_stats(cfg);
    for r in &rows {
        println!(
            "{:<20} {:>6.3}% {:>6.2}% {:>6.2}% {:>6.2}% {:>6.2}% {:>9} {:>7} {:>9} {:>6.3}",
            r.name,
            r.serializing_fraction * 100.0,
            r.store_fraction * 100.0,
            r.load_fraction * 100.0,
            r.branch_fraction * 100.0,
            r.mispredict_rate * 100.0,
            r.distinct_lines,
            r.footprint_words,
            r.baseline_cycles,
            r.baseline_ipc
        );
    }
    let mut text = stats_json(cfg, &rows).render();
    text.push('\n');
    match std::fs::write(OUT_PATH, &text) {
        Ok(()) => println!("wrote {OUT_PATH} ({} kernels)", rows.len()),
        Err(e) => {
            eprintln!("error: could not write {OUT_PATH}: {e}");
            std::process::exit(1);
        }
    }
    if let Some(p) = stats_log(cfg, &rows).write(1) {
        eprintln!("run log: {}", p.display());
    }
    println!("\nReading: the synthetic profiles assert these numbers; the kernels measure");
    println!("them. A serializing fraction near the profile table's value says the paper's");
    println!("Fig. 5 sensitivity transfers to executed code; a mispredict rate well above");
    println!("the gshare floor says the branch stream carries real data-dependent control.");
}
