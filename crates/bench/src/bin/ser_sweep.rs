//! Regenerates §VI-C: projected IPC across soft-error rates and the
//! break-even SER between the two architectures.

use unsync_bench::{experiments, render, ExperimentConfig, RunLog, Runner};
use unsync_workloads::Benchmark;

fn main() {
    let cfg = ExperimentConfig::from_env();
    let benches = [
        Benchmark::Bzip2,
        Benchmark::Gzip,
        Benchmark::Ammp,
        Benchmark::Galgel,
        Benchmark::Qsort,
        Benchmark::Sha,
        Benchmark::Dijkstra,
        Benchmark::Fft,
    ];
    let mut log = RunLog::start("ser_sweep", cfg);
    let sweep = experiments::ser_sweep(cfg, &benches);
    print!("{}", render::ser(&sweep));
    for rec in render::jsonl::ser(&sweep) {
        log.record(rec);
    }
    if let Some(p) = log.write(Runner::from_env().workers()) {
        eprintln!("run log: {}", p.display());
    }
    println!();
    println!("Paper claims: IPC does not vary from SER 1e-7 to 1e-17 (or lower); UnSync");
    println!("outperforms Reunion throughout; the hypothetical break-even is 1.29e-3.");
}
