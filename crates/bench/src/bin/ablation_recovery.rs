//! Ablation: recovery disciplines across soft-error rates.
//!
//! Three ways to buy back a detected error:
//! * **UnSync** — always-forward state copy: zero re-execution, expensive
//!   per event (whole-L1 copy), *nothing* paid when error-free;
//! * **Reunion** — fine-grained rollback: cheap per event, but the
//!   fingerprint machinery taxes every instruction;
//! * **Checkpointing** (Smolens 2004) — coarse rollback: cheap machinery,
//!   but half a (multi-thousand-instruction) interval re-executes per
//!   event and every boundary stalls for the heavy-weight snapshot.
//!
//! The sweep shows where each discipline wins as the error rate rises —
//! the §VI-C analysis generalized to three designs.

use unsync_bench::{ExperimentConfig, Json, RunLog};
use unsync_core::{RecoveryMode, UnsyncConfig, UnsyncPair};
use unsync_fault::{FaultSite, FaultTarget, PairFault};
use unsync_mem::WritePolicy;
use unsync_reunion::{
    checkpoint_error_cost, CheckpointConfig, CheckpointHooks, ReunionConfig, ReunionPair,
};
use unsync_sim::{run_baseline, run_stream, CoreConfig};
use unsync_workloads::{Benchmark, WorkloadGen};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let bench = Benchmark::Gzip;
    let t = WorkloadGen::new(bench, cfg.inst_count, cfg.seed).collect_trace();
    let insts = cfg.inst_count as f64;

    let mut s = WorkloadGen::new(bench, cfg.inst_count, cfg.seed);
    let base = run_baseline(CoreConfig::table1(), &mut s)
        .core
        .last_commit_cycle as f64;

    // Error-free runtimes.
    let unsync = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline());
    let reunion = ReunionPair::new(CoreConfig::table1(), ReunionConfig::paper_baseline());
    let u0 = unsync.run(&t, &[]).cycles as f64;
    let r0 = reunion.run(&t, &[]).cycles as f64;
    let ckpt_cfg = CheckpointConfig::default();
    let c0 = {
        let mut s = WorkloadGen::new(bench, cfg.inst_count, cfg.seed);
        let mut hooks = CheckpointHooks::new(ckpt_cfg);
        run_stream(
            CoreConfig::table1(),
            &mut s,
            &mut hooks,
            WritePolicy::WriteThrough,
        )
        .core
        .last_commit_cycle as f64
    };

    // Per-error costs: measured for UnSync/Reunion, analytic for the
    // checkpoint scheme.
    let k = 10u64;
    let faults: Vec<PairFault> = (0..k)
        .map(|i| PairFault {
            at: (i + 1) * cfg.inst_count / (k + 1),
            core: (i % 2) as usize,
            site: FaultSite {
                target: FaultTarget::Rob,
                bit_offset: 7 + i,
            },
            kind: unsync_fault::FaultKind::Single,
        })
        .collect();
    let u_cost = (unsync.run(&t, &faults).cycles as f64 - u0) / k as f64;
    let r_cost = (reunion.run(&t, &faults).cycles as f64 - r0) / k as f64;
    let c_cost = checkpoint_error_cost(&ckpt_cfg, c0 / insts);

    println!(
        "Ablation — recovery disciplines on {} ({} instructions)",
        bench.name(),
        cfg.inst_count
    );
    println!(
        "{:<14} {:>16} {:>18}",
        "discipline", "error-free ovh", "cycles per error"
    );
    let mut log = RunLog::start("ablation_recovery", cfg);
    for (name, t0, cost) in [
        ("UnSync", u0, u_cost),
        ("Reunion", r0, r_cost),
        ("Checkpoint", c0, c_cost),
    ] {
        log.record(
            Json::obj()
                .field("discipline", name)
                .field("error_free_overhead_pct", (t0 / base - 1.0) * 100.0)
                .field("cycles_per_error", cost),
        );
        println!(
            "{:<14} {:>15.2}% {:>18.0}",
            name,
            (t0 / base - 1.0) * 100.0,
            cost
        );
    }

    println!("\nprojected runtime (normalized to baseline) vs SER:");
    println!(
        "{:>12} {:>10} {:>10} {:>12}",
        "SER (/inst)", "UnSync", "Reunion", "Checkpoint"
    );
    for exp in [-17i32, -9, -7, -6, -5, -4, -3] {
        let rate = 10f64.powi(exp);
        let proj = |t0: f64, cost: f64| (t0 + rate * insts * cost) / base;
        log.record(
            Json::obj()
                .field("ser_per_inst", rate)
                .field("unsync_norm", proj(u0, u_cost))
                .field("reunion_norm", proj(r0, r_cost))
                .field("checkpoint_norm", proj(c0, c_cost)),
        );
        println!(
            "{:>12.0e} {:>10.4} {:>10.4} {:>12.4}",
            rate,
            proj(u0, u_cost),
            proj(r0, r_cost),
            proj(c0, c_cost)
        );
    }
    println!("\nReading: at physical rates (≤1e-7) the error-free column dominates and the");
    println!("cheapest machinery (UnSync) wins; only at absurd rates do rollback disciplines");
    println!("catch up — the paper's always-forward bet, quantified across three designs.");

    // Second axis: the always-forward recovery's own L1 strategy.
    let mut inval_cfg = UnsyncConfig::paper_baseline();
    inval_cfg.recovery_mode = RecoveryMode::InvalidateOnly;
    let inval = UnsyncPair::new(CoreConfig::table1(), inval_cfg);
    let i0 = inval.run(&t, &[]).cycles as f64;
    let i_cost = (inval.run(&t, &faults).cycles as f64 - i0) / k as f64;
    println!("\nUnSync L1-recovery strategy ablation (same always-forward discipline):");
    println!("{:<22} {:>18}", "strategy", "cycles per error");
    println!("{:<22} {:>18.0}", "copy whole L1 (paper)", u_cost);
    println!("{:<22} {:>18.0}", "invalidate + refill", i_cost);
    log.record(
        Json::obj()
            .field("l1_recovery_ablation", true)
            .field("copy_whole_l1_cycles_per_error", u_cost)
            .field("invalidate_refill_cycles_per_error", i_cost),
    );
    if let Some(p) = log.write(1) {
        eprintln!("run log: {}", p.display());
    }
    println!("The invalidate-only variant shifts the cost into post-recovery cold misses,");
    println!("which the per-error figure above already includes (measured end to end).");
}
