//! Multi-bit-upset study (§VIII future work: "multi-bit correction for
//! cache blocks"): adjacent double-bit strikes on the L1 defeat the
//! paper's 1-bit line parity, and what upgrading to SECDED costs.

use unsync_bench::{ExperimentConfig, Json, RunLog};
use unsync_core::{L1Protection, UnsyncConfig, UnsyncPair};
use unsync_fault::{FaultKind, FaultSite, FaultTarget, PairFault};
use unsync_hwcost::{CacheModel, CacheProtection};
use unsync_sim::CoreConfig;
use unsync_workloads::{Benchmark, WorkloadGen};

fn main() {
    let cfg = ExperimentConfig::from_env();
    let t = WorkloadGen::new(Benchmark::Gzip, cfg.inst_count, cfg.seed).collect_trace();
    let campaigns = 40u64;

    println!("MBU campaign: {campaigns} adjacent double-bit L1 strikes on gzip");
    println!(
        "{:<22} {:>10} {:>12} {:>10} {:>9}",
        "L1 protection", "detected", "recoveries", "silent", "correct"
    );
    let mut log = RunLog::start("mbu", cfg);
    for (label, prot) in [
        ("line parity (paper)", L1Protection::LineParity),
        ("SECDED (§VIII)", L1Protection::Secded),
    ] {
        let ucfg = UnsyncConfig {
            l1_protection: prot,
            ..UnsyncConfig::paper_baseline()
        };
        let pair = UnsyncPair::new(CoreConfig::table1(), ucfg);
        let (mut det, mut rec, mut silent, mut correct) = (0u64, 0u64, 0u64, 0u64);
        for i in 0..campaigns {
            let fault = PairFault {
                at: 500 + i * (cfg.inst_count - 1_000) / campaigns,
                core: (i % 2) as usize,
                site: FaultSite {
                    target: FaultTarget::L1Data,
                    bit_offset: 1_000 + i * 997,
                },
                kind: FaultKind::AdjacentDouble,
            };
            let out = pair.run(&t, &[fault]);
            det += out.detections;
            rec += out.recoveries;
            silent += out.silent_faults;
            correct += u64::from(out.correct());
        }
        log.record(
            Json::obj()
                .field("l1_protection", label)
                .field("campaigns", campaigns)
                .field("detected", det)
                .field("recoveries", rec)
                .field("silent", silent)
                .field("correct", correct),
        );
        println!(
            "{:<22} {:>10} {:>12} {:>10} {:>6}/{campaigns}",
            label, det, rec, silent, correct
        );
    }

    let parity = CacheModel::l1(CacheProtection::parity_per_256());
    let secded = CacheModel::l1(CacheProtection::Secded);
    log.record(
        Json::obj()
            .field("hw_cost", true)
            .field("parity_area_mm2", parity.area_mm2())
            .field("secded_area_mm2", secded.area_mm2())
            .field("parity_power_mw", parity.power_mw())
            .field("secded_power_mw", secded.power_mw()),
    );
    if let Some(p) = log.write(1) {
        eprintln!("run log: {}", p.display());
    }
    println!(
        "\nhardware cost of closing the hole: L1 {:.4} → {:.4} mm² (+{:.1}%), \
         {:.2} → {:.2} mW (+{:.1}%)",
        parity.area_mm2(),
        secded.area_mm2(),
        (secded.area_mm2() / parity.area_mm2() - 1.0) * 100.0,
        parity.power_mw(),
        secded.power_mw(),
        (secded.power_mw() / parity.power_mw() - 1.0) * 100.0
    );
    println!("\nReading: single-event upsets (the paper's threat model) are fully covered by");
    println!("parity; once multi-bit upsets matter, the L1 needs SECDED — which also corrects");
    println!("single strikes in place, removing those pair recoveries entirely.");
}
