//! Regenerates Fig. 6: UnSync performance across Communication-Buffer
//! sizes.

use unsync_bench::{experiments, render, ExperimentConfig, RunLog, Runner};
use unsync_workloads::Benchmark;

fn main() {
    let cfg = ExperimentConfig::from_env();
    // Store-heavy workloads pressure the CB hardest.
    let benches = [
        Benchmark::Qsort,
        Benchmark::Rijndael,
        Benchmark::Bzip2,
        Benchmark::Gzip,
        Benchmark::Stringsearch,
    ];
    let mut log = RunLog::start("fig6", cfg);
    let rows = experiments::fig6(cfg, &benches);
    print!("{}", render::fig6(&rows));
    for r in &rows {
        log.record(render::jsonl::fig6(r));
    }
    if let Some(p) = log.write(Runner::from_env().workers()) {
        eprintln!("run log: {}", p.display());
    }
    println!();
    println!("Paper claims: small CBs stall the cores; 2 KB / 4 KB buffers eliminate the");
    println!("resource-occupancy bottleneck (runtime ≈ baseline).");
}
