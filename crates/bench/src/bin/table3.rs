//! Regenerates Table III: projected die sizes of published many-core
//! processors under the two error-resilient implementations.

fn main() {
    println!("Table III — projected die sizes under Reunion / UnSync");
    println!("{}", unsync_hwcost::table3().render());
    println!("Paper reference: differences 26.64 / 30.69 / 51.15 mm².");
}
