//! Regenerates Table III: projected die sizes of published many-core
//! processors under the two error-resilient implementations.

use unsync_bench::{Json, RunLog};

fn main() {
    println!("Table III — projected die sizes under Reunion / UnSync");
    let t = unsync_hwcost::table3();
    println!("{}", t.render());
    let mut log = RunLog::start_static("table3");
    for p in &t.rows {
        log.record(
            Json::obj()
                .field("chip", p.chip.name)
                .field("node_nm", p.chip.node_nm)
                .field("cores", p.chip.cores)
                .field("die_area_mm2", p.chip.die_area_mm2)
                .field("reunion_mm2", p.reunion_mm2)
                .field("unsync_mm2", p.unsync_mm2)
                .field("difference_mm2", p.reunion_mm2 - p.unsync_mm2),
        );
    }
    if let Some(p) = log.write(1) {
        eprintln!("run log: {}", p.display());
    }
    println!("Paper reference: differences 26.64 / 30.69 / 51.15 mm².");
}
