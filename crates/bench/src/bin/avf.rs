//! AVF-weighted SDC/DUE analysis per architecture: how much *silent*
//! vulnerability each scheme leaves, weighted by how often struck bits
//! actually hold live data.

use unsync_bench::{ExperimentConfig, Json, RunLog};
use unsync_fault::avf;
use unsync_fault::Coverage;
use unsync_sim::{run_baseline, CoreConfig};
use unsync_workloads::{Benchmark, WorkloadGen};

fn main() {
    let cfg = ExperimentConfig::from_env();
    println!(
        "AVF-weighted vulnerability ({} instructions per benchmark)",
        cfg.inst_count
    );
    println!(
        "{:<12} {:>8} {:>8} {:>9}   {:>14} {:>14} {:>14}",
        "benchmark",
        "RF AVF",
        "ROB AVF",
        "L1 reuse",
        "baseline SDC%",
        "Reunion SDC%",
        "UnSync SDC%"
    );
    let mut log = RunLog::start("avf", cfg);
    for bench in [
        Benchmark::Bzip2,
        Benchmark::Galgel,
        Benchmark::Mcf,
        Benchmark::Sha,
        Benchmark::Qsort,
    ] {
        let t = WorkloadGen::new(bench, cfg.inst_count, cfg.seed).collect_trace();
        let mut s = WorkloadGen::new(bench, cfg.inst_count, cfg.seed);
        let sim = run_baseline(CoreConfig::table1(), &mut s);
        let core = CoreConfig::table1();
        let est = avf::estimate(
            &t,
            sim.core.avg_rob_occupancy() / core.rob_size as f64,
            // IQ/LSQ utilization approximated from ROB occupancy scaled
            // by their relative depths.
            sim.core.avg_rob_occupancy() / core.rob_size as f64,
            sim.core.avg_rob_occupancy() / core.rob_size as f64 * 0.5,
        );
        let split = |c: Coverage| avf::SdcDueSplit::compute(&est, &c).sdc_fraction() * 100.0;
        log.record(
            Json::obj()
                .field("benchmark", bench.name())
                .field("rf_avf", est.register_file)
                .field("rob_avf", est.rob)
                .field("l1_reuse", est.l1_data)
                .field("baseline_sdc_pct", split(Coverage::baseline()))
                .field("reunion_sdc_pct", split(Coverage::reunion()))
                .field("unsync_sdc_pct", split(Coverage::unsync())),
        );
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>9.3}   {:>13.1}% {:>13.1}% {:>13.1}%",
            bench.name(),
            est.register_file,
            est.rob,
            est.l1_data,
            split(Coverage::baseline()),
            split(Coverage::reunion()),
            split(Coverage::unsync()),
        );
    }
    println!("\nReading: UnSync's placement drives AVF-weighted silent corruption to zero;");
    println!("Reunion's residual SDC comes from the ARF and TLB it leaves uncovered.");
    if let Some(p) = log.write(1) {
        eprintln!("run log: {}", p.display());
    }
}
