//! Ablation: Communication-Buffer drain policy.
//!
//! Both-complete (the paper's §III-A rule) vs. eager first-copy drain:
//! eager drains earlier (slightly lower CB pressure) but reopens the
//! silent-corruption window the both-complete rule exists to close — a
//! corrupted store value can reach the ECC-protected L2 before its
//! parity error is detected.

use unsync_bench::{ExperimentConfig, Json, RunLog};
use unsync_core::{DrainPolicy, UnsyncConfig, UnsyncPair};
use unsync_fault::{FaultSite, FaultTarget, PairFault};
use unsync_sim::{run_baseline, CoreConfig};
use unsync_workloads::{Benchmark, WorkloadGen};

fn main() {
    let insts = 100_000u64;
    let bench = Benchmark::Qsort;
    let t = WorkloadGen::new(bench, insts, 1).collect_trace();
    let mut s = WorkloadGen::new(bench, insts, 1);
    let base = run_baseline(CoreConfig::table1(), &mut s)
        .core
        .last_commit_cycle as f64;

    // LSQ faults snapped to stores — the hazard-triggering class.
    let stores: Vec<u64> = t
        .insts()
        .iter()
        .filter(|i| i.op.is_store())
        .map(|i| i.seq)
        .collect();
    let faults: Vec<PairFault> = (0..20u64)
        .map(|i| {
            let at = stores[(i as usize + 1) * stores.len() / 22];
            PairFault {
                at,
                core: 0,
                site: FaultSite {
                    target: FaultTarget::Lsq,
                    bit_offset: 3 + i,
                },
                kind: unsync_fault::FaultKind::Single,
            }
        })
        .collect();

    println!(
        "Ablation — CB drain policy on {} ({insts} instructions, 20 LSQ faults on stores)",
        bench.name()
    );
    println!(
        "{:<16} {:>13} {:>14} {:>12} {:>10}",
        "policy", "runtime norm", "CB stalls", "recoveries", "silent"
    );
    let mut log = RunLog::start(
        "ablation_cb",
        ExperimentConfig {
            inst_count: insts,
            seed: 1,
        },
    );
    for (name, policy) in [
        ("both-complete", DrainPolicy::BothComplete),
        ("eager", DrainPolicy::Eager),
    ] {
        let cfg = UnsyncConfig {
            drain_policy: policy,
            ..UnsyncConfig::paper_baseline()
        };
        let clean = UnsyncPair::new(CoreConfig::table1(), cfg).run(&t, &[]);
        let faulty = UnsyncPair::new(CoreConfig::table1(), cfg).run(&t, &faults);
        log.record(
            Json::obj()
                .field("policy", name)
                .field("runtime_norm", clean.cycles as f64 / base)
                .field("cb_full_stall_cycles", clean.cb_full_stall_cycles)
                .field("recoveries", faulty.recoveries)
                .field("silent_faults", faulty.silent_faults),
        );
        println!(
            "{:<16} {:>13.4} {:>14} {:>12} {:>10}",
            name,
            clean.cycles as f64 / base,
            clean.cb_full_stall_cycles,
            faulty.recoveries,
            faulty.silent_faults
        );
    }
    if let Some(p) = log.write(1) {
        eprintln!("run log: {}", p.display());
    }
    println!("\nReading: eager saves a little CB occupancy but lets corrupted store values");
    println!("escape to the L2 before detection — the both-complete rule is what makes the");
    println!("CB a correctness mechanism, not just a write buffer.");
}
