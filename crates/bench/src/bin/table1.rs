//! Regenerates Table I: the simulated baseline CMP parameters.

use unsync_bench::{render, RunLog};
use unsync_mem::HierarchyConfig;
use unsync_sim::CoreConfig;

fn main() {
    let core = CoreConfig::table1();
    let mem = HierarchyConfig::table1();
    let mut log = RunLog::start_static("table1");
    log.record(render::jsonl::table1());
    if let Some(p) = log.write(1) {
        eprintln!("run log: {}", p.display());
    }
    println!("Table I — simulated baseline CMP parameters");
    println!(
        "{:<18} 4 logical cores, Alpha 21264-class",
        "Processor Cores"
    );
    println!(
        "{:<18} {:.0} GHz, 5-stage pipeline; out-of-order, {}-wide fetch/issue/commit",
        "", core.clock_ghz, core.fetch_width
    );
    println!("{:<18} {}", "Issue Queue", core.iq_size);
    println!(
        "{:<18} ROB {}, LSQ {}",
        "Windows", core.rob_size, core.lsq_size
    );
    println!(
        "{:<18} {} KB split I/D, {}-way, {} MSHRs, {}-cycle access, {}-byte lines",
        "L1 Cache",
        mem.l1d.size_bytes / 1024,
        mem.l1d.assoc,
        mem.l1d.mshrs,
        mem.l1d.hit_latency,
        mem.l1d.line_bytes
    );
    println!(
        "{:<18} {} MB, {}-way, {}-byte lines, {}-cycle access, {} MSHRs",
        "Shared L2 Cache",
        mem.l2.size_bytes / (1024 * 1024),
        mem.l2.assoc,
        mem.l2.line_bytes,
        mem.l2.hit_latency,
        mem.l2.mshrs
    );
    println!(
        "{:<18} {} entries, {}-way",
        "I-TLB", mem.itlb.entries, mem.itlb.assoc
    );
    println!(
        "{:<18} {} entries, {}-way",
        "D-TLB", mem.dtlb.entries, mem.dtlb.assoc
    );
    println!(
        "{:<18} {}-bit wide, {} cycles access latency",
        "Memory",
        mem.bus_bytes_per_cycle * 8,
        mem.dram_latency
    );
}
