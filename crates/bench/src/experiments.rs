//! Experiment drivers for every figure and reliability study.

use serde::Serialize;
use unsync_core::{UnsyncConfig, UnsyncPair};
use unsync_exec::{FlexConfig, FlexPair, SecdedOnlyCore, TmrTriple};
use unsync_fault::{Coverage, FaultTarget, PairFault, SerRate};
use unsync_isa::TraceProgram;
use unsync_reunion::{CheckpointConfig, CheckpointHooks, LockstepPair, ReunionConfig, ReunionPair};
use unsync_sim::CoreConfig;
use unsync_workloads::{Benchmark, Kernel, SyntheticSource, WorkloadSource};

use crate::runner::Runner;

/// Common knobs for the simulation experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ExperimentConfig {
    /// Instructions simulated per benchmark per configuration.
    pub inst_count: u64,
    /// Workload seed (recorded in EXPERIMENTS.md).
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            inst_count: 100_000,
            seed: 1,
        }
    }
}

impl ExperimentConfig {
    /// A smaller configuration for micro-benches and smoke tests.
    pub fn quick() -> Self {
        ExperimentConfig {
            inst_count: 10_000,
            seed: 1,
        }
    }

    /// Reads overrides from the environment: `UNSYNC_INSTS` and
    /// `UNSYNC_SEED` scale every experiment binary without recompiling.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Ok(v) = std::env::var("UNSYNC_INSTS") {
            if let Ok(n) = v.trim().parse::<u64>() {
                cfg.inst_count = n.max(1_000);
            }
        }
        if let Ok(v) = std::env::var("UNSYNC_SEED") {
            if let Ok(s) = v.trim().parse::<u64>() {
                cfg.seed = s;
            }
        }
        cfg
    }
}

/// Baseline cycles for one benchmark trace — memoized process-wide so
/// every figure normalizing against the same baseline shares one
/// simulation (see [`crate::runner::baseline_cycles`]).
fn baseline_cycles(bench: Benchmark, cfg: ExperimentConfig) -> u64 {
    crate::runner::baseline_cycles(bench, cfg)
}

fn trace(bench: Benchmark, cfg: ExperimentConfig) -> TraceProgram {
    SyntheticSource::new(bench, cfg.inst_count, cfg.seed).trace()
}

/// Runs `f` once per benchmark on `runner`, preserving benchmark order.
fn per_benchmark<T, F>(runner: Runner, benches: &[Benchmark], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Benchmark) -> T + Sync,
{
    runner.map(benches, |&bench| f(bench))
}

// ───────────────────────────── Figure 4 ─────────────────────────────────

/// One bar group of Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Fig4Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Serializing-instruction fraction of the trace.
    pub serializing_fraction: f64,
    /// Baseline IPC.
    pub base_ipc: f64,
    /// Reunion runtime overhead vs. baseline (fraction).
    pub reunion_overhead: f64,
    /// UnSync runtime overhead vs. baseline (fraction).
    pub unsync_overhead: f64,
}

/// Fig. 4: per-benchmark runtime overhead of Reunion (FI = 10) and UnSync
/// relative to the unprotected baseline CMP. The paper's claims: Reunion
/// averages ≈8 % and exceeds 10 % on bzip2/ammp/galgel (which have 2 %,
/// 1.7 % and 1 % serializing instructions); UnSync stays ≈2 %.
pub fn fig4(cfg: ExperimentConfig) -> Vec<Fig4Row> {
    fig4_on(Runner::from_env(), cfg)
}

/// [`fig4`] on an explicit runner — results are identical at any worker
/// count (the determinism regression tests rely on this).
pub fn fig4_on(runner: Runner, cfg: ExperimentConfig) -> Vec<Fig4Row> {
    per_benchmark(runner, Benchmark::all(), |bench| {
        let t = trace(bench, cfg);
        let base = baseline_cycles(bench, cfg) as f64;
        let reunion =
            ReunionPair::new(CoreConfig::table1(), ReunionConfig::paper_baseline()).run(&t, &[]);
        let unsync =
            UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline()).run(&t, &[]);
        Fig4Row {
            bench: bench.name(),
            serializing_fraction: t.stats().serializing_fraction(),
            base_ipc: cfg.inst_count as f64 / base,
            reunion_overhead: reunion.cycles as f64 / base - 1.0,
            unsync_overhead: unsync.cycles as f64 / base - 1.0,
        }
    })
}

// ───────────────────────────── Figure 5 ─────────────────────────────────

/// One (FI, latency) point of the Fig. 5 sweep for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Fig5Cell {
    /// Benchmark name.
    pub bench: &'static str,
    /// Fingerprint interval.
    pub fi: u32,
    /// Comparison latency, cycles.
    pub latency: u32,
    /// Reunion runtime normalized to baseline (1.0 = no overhead).
    pub reunion_norm: f64,
    /// UnSync runtime normalized to baseline (flat — it has no FI).
    pub unsync_norm: f64,
    /// Reunion's average ROB occupancy at this point.
    pub reunion_rob_occupancy: f64,
}

/// The paper's Fig. 5 sweep points: FI and comparison latency increased
/// together from (1, 10) to (30, 40).
pub const FIG5_POINTS: [(u32, u32); 5] = [(1, 10), (5, 15), (10, 20), (20, 30), (30, 40)];

/// Fig. 5: Reunion's sensitivity to fingerprint interval and comparison
/// latency. The paper: ammp and galgel degrade steeply (ROB saturation),
/// reaching −27 % and −41 % at (30, 40); UnSync is flat.
pub fn fig5(cfg: ExperimentConfig, benches: &[Benchmark]) -> Vec<Fig5Cell> {
    fig5_on(Runner::from_env(), cfg, benches)
}

/// [`fig5`] on an explicit runner.
pub fn fig5_on(runner: Runner, cfg: ExperimentConfig, benches: &[Benchmark]) -> Vec<Fig5Cell> {
    let mut cells = Vec::new();
    for &(fi, latency) in &FIG5_POINTS {
        let mut row = per_benchmark(runner, benches, |bench| {
            let t = trace(bench, cfg);
            let base = baseline_cycles(bench, cfg) as f64;
            let mut stream = trace(bench, cfg);
            let mut hooks = unsync_reunion::ReunionHooks::new(ReunionConfig::for_fi(fi, latency));
            let reunion = unsync_sim::run_stream(
                CoreConfig::table1(),
                &mut stream,
                &mut hooks,
                unsync_mem::WritePolicy::WriteThrough,
            );
            let unsync =
                UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline()).run(&t, &[]);
            Fig5Cell {
                bench: bench.name(),
                fi,
                latency,
                reunion_norm: reunion.core.last_commit_cycle as f64 / base,
                unsync_norm: unsync.cycles as f64 / base,
                reunion_rob_occupancy: reunion.core.avg_rob_occupancy(),
            }
        });
        cells.append(&mut row);
    }
    cells
}

// ───────────────────────────── Figure 6 ─────────────────────────────────

/// One CB-size point for one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Fig6Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// CB size label in bytes (8-byte entries).
    pub cb_bytes: usize,
    /// CB entries.
    pub cb_entries: usize,
    /// UnSync runtime normalized to baseline.
    pub unsync_norm: f64,
    /// Commit cycles lost to a full CB (both cores).
    pub cb_full_stall_cycles: u64,
}

/// The paper's Fig. 6 CB sizes (bytes).
pub const FIG6_SIZES: [usize; 6] = [16, 64, 256, 1024, 2048, 4096];

/// Fig. 6: UnSync runtime across CB sizes. The paper: small CBs stall the
/// cores; 2 KB / 4 KB buffers eliminate the bottleneck entirely.
pub fn fig6(cfg: ExperimentConfig, benches: &[Benchmark]) -> Vec<Fig6Row> {
    fig6_on(Runner::from_env(), cfg, benches)
}

/// [`fig6`] on an explicit runner.
pub fn fig6_on(runner: Runner, cfg: ExperimentConfig, benches: &[Benchmark]) -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    for &bytes in &FIG6_SIZES {
        let entries = UnsyncConfig::cb_entries_for_bytes(bytes);
        let mut row = per_benchmark(runner, benches, |bench| {
            let t = trace(bench, cfg);
            let base = baseline_cycles(bench, cfg) as f64;
            let out = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::with_cb_entries(entries))
                .run(&t, &[]);
            Fig6Row {
                bench: bench.name(),
                cb_bytes: bytes,
                cb_entries: entries,
                unsync_norm: out.cycles as f64 / base,
                cb_full_stall_cycles: out.cb_full_stall_cycles,
            }
        });
        rows.append(&mut row);
    }
    rows
}

// ───────────────────────────── §VI-C: SER sweep ─────────────────────────

/// The IPC-vs-SER extrapolation of §VI-C.
#[derive(Debug, Clone, Serialize)]
pub struct SerSweep {
    /// Swept error rates (errors/instruction).
    pub rates: Vec<f64>,
    /// Projected pair IPC for Reunion at each rate.
    pub reunion_ipc: Vec<f64>,
    /// Projected pair IPC for UnSync at each rate.
    pub unsync_ipc: Vec<f64>,
    /// Error-free cycles (Reunion, UnSync) per `inst_count` instructions.
    pub error_free_cycles: (f64, f64),
    /// Measured per-error recovery cost in cycles (Reunion rollback,
    /// UnSync always-forward state copy).
    pub per_error_cycles: (f64, f64),
    /// The measured break-even SER: the rate at which UnSync's cheap
    /// error-free mode + expensive recovery equals Reunion's costly
    /// error-free mode + cheap rollback (paper: 1.29e-3).
    pub break_even: Option<f64>,
}

/// §VI-C: extrapolates average IPC across SER rates 1e-17 … 1e-3, exactly
/// as the paper does — measure error-free runtime and per-error recovery
/// cost, then project. Uses recoverable in-pipeline faults (ROB strikes)
/// to measure the per-event costs.
pub fn ser_sweep(cfg: ExperimentConfig, benches: &[Benchmark]) -> SerSweep {
    ser_sweep_on(Runner::from_env(), cfg, benches)
}

/// [`ser_sweep`] on an explicit runner.
pub fn ser_sweep_on(runner: Runner, cfg: ExperimentConfig, benches: &[Benchmark]) -> SerSweep {
    // Per-benchmark error-free cycles and per-event costs, averaged.
    let measures = per_benchmark(runner, benches, |bench| {
        let t = trace(bench, cfg);
        let golden = crate::runner::golden_memory(bench, cfg);
        let reunion = ReunionPair::new(CoreConfig::table1(), ReunionConfig::paper_baseline());
        let unsync = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline());
        let r0 = reunion.run_with_golden(&t, &[], Some(&golden));
        let u0 = unsync.run_with_golden(&t, &[], Some(&golden));
        // Inject K recoverable faults to measure per-event cost.
        let k = 10u64;
        let faults: Vec<PairFault> = (0..k)
            .map(|i| PairFault {
                at: (i + 1) * cfg.inst_count / (k + 1),
                core: (i % 2) as usize,
                site: unsync_fault::FaultSite {
                    target: FaultTarget::Rob,
                    bit_offset: 17 + i,
                },
                kind: unsync_fault::FaultKind::Single,
            })
            .collect();
        let rk = reunion.run_with_golden(&t, &faults, Some(&golden));
        let uk = unsync.run_with_golden(&t, &faults, Some(&golden));
        let r_cost = (rk.cycles.saturating_sub(r0.cycles)) as f64 / k as f64;
        let u_cost = (uk.cycles.saturating_sub(u0.cycles)) as f64 / k as f64;
        (r0.cycles as f64, u0.cycles as f64, r_cost, u_cost)
    });
    let n = measures.len() as f64;
    let (mut r0, mut u0, mut rc, mut uc) = (0.0, 0.0, 0.0, 0.0);
    for (a, b, c, d) in measures {
        r0 += a / n;
        u0 += b / n;
        rc += c / n;
        uc += d / n;
    }

    let insts = cfg.inst_count as f64;
    let mut rates = vec![SerRate::NM90.rate()];
    for exp in (3..=17).rev() {
        rates.push(10f64.powi(-exp));
    }
    rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let project = |t0: f64, cost: f64, rate: f64| insts / (t0 + rate * insts * cost);
    let reunion_ipc = rates.iter().map(|&r| project(r0, rc, r)).collect();
    let unsync_ipc = rates.iter().map(|&r| project(u0, uc, r)).collect();
    // Break-even: u0 + r·N·uc = r0 + r·N·rc  ⇒  r = (u0−r0)/(N(rc−uc)).
    let break_even = if (uc - rc).abs() > 1e-9 && r0 > u0 {
        let r = (r0 - u0) / (insts * (uc - rc));
        (r > 0.0).then_some(r)
    } else {
        None
    };
    SerSweep {
        rates,
        reunion_ipc,
        unsync_ipc,
        error_free_cycles: (r0, u0),
        per_error_cycles: (rc, uc),
        break_even,
    }
}

// ───────────────────────────── §VI-D: ROEC ──────────────────────────────

/// Aggregate fault-injection outcomes for one architecture.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct RoecArchStats {
    /// Faults injected.
    pub injected: u64,
    /// Runs that ended bit-identical to the golden run.
    pub correct: u64,
    /// Faults detected (fingerprint mismatch / hardware detector).
    pub detected: u64,
    /// Faults corrected in place (ECC).
    pub corrected_in_place: u64,
    /// Unrecoverable outcomes (divergent state rollback cannot fix).
    pub unrecoverable: u64,
    /// Faults that produced silently corrupt memory.
    pub silent_corruptions: u64,
}

/// The §VI-D region-of-error-coverage comparison.
#[derive(Debug, Clone, Serialize)]
pub struct RoecReport {
    /// Static ROEC fraction (bits covered by a mechanism): UnSync.
    pub unsync_roec: f64,
    /// Static ROEC fraction: Reunion.
    pub reunion_roec: f64,
    /// Injection outcomes under UnSync.
    pub unsync: RoecArchStats,
    /// Injection outcomes under Reunion.
    pub reunion: RoecArchStats,
    /// Injection outcomes per fault target under Reunion
    /// (target, injected, correct).
    pub reunion_by_target: Vec<(&'static str, u64, u64)>,
}

fn target_name(t: FaultTarget) -> &'static str {
    match t {
        FaultTarget::RegisterFile => "RegisterFile",
        FaultTarget::Pc => "PC",
        FaultTarget::PipelineRegs => "PipelineRegs",
        FaultTarget::Rob => "ROB",
        FaultTarget::IssueQueue => "IssueQueue",
        FaultTarget::Lsq => "LSQ",
        FaultTarget::Tlb => "TLB",
        FaultTarget::L1Data => "L1Data",
        FaultTarget::L1Tag => "L1Tag",
    }
}

/// §VI-D: injects `campaigns` single faults — stratified across the nine
/// vulnerable structures so every coverage class is exercised — into each
/// architecture and verifies program outcomes against the golden run.
/// TLB strikes are snapped to store instructions (the mistranslated-store
/// case is the one that escapes Reunion's fingerprint).
pub fn roec(cfg: ExperimentConfig, campaigns: u64) -> RoecReport {
    roec_on(Runner::from_env(), cfg, campaigns)
}

/// [`roec`] on an explicit runner.
pub fn roec_on(runner: Runner, cfg: ExperimentConfig, campaigns: u64) -> RoecReport {
    let bench = Benchmark::Gzip;
    let t = trace(bench, cfg);
    // One golden execution serves every injection below.
    let golden = crate::runner::golden_memory(bench, cfg);
    let targets = unsync_fault::inject::ALL_TARGETS;
    let faults: Vec<PairFault> = (0..campaigns)
        .map(|i| {
            let mut f = PairFault::plan(cfg.seed.wrapping_add(0xabcd), i);
            f.site.target = targets[(i % targets.len() as u64) as usize];
            f.site.bit_offset %= f.site.target.bits();
            // Spread strike points over the middle of the trace.
            f.at = cfg.inst_count / 10 + (i * (cfg.inst_count * 8 / 10)) / campaigns.max(1);
            if f.site.target == FaultTarget::Tlb {
                // Snap to the next store so the strike hits a store
                // translation.
                if let Some(st) = t.insts()[f.at as usize..].iter().find(|x| x.op.is_store()) {
                    f.at = st.seq;
                }
            }
            f
        })
        .collect();

    let reunion = ReunionPair::new(CoreConfig::table1(), ReunionConfig::paper_baseline());
    let unsync = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline());

    let results = per_benchmark(
        runner,
        // Reuse the parallel helper by chunking campaigns over dummy
        // benchmark slots is awkward; run the two architectures in
        // parallel instead.
        &[Benchmark::Gzip, Benchmark::Bzip2],
        |which| {
            if which == Benchmark::Gzip {
                // UnSync campaigns.
                let mut s = RoecArchStats::default();
                let mut by_target: Vec<(&'static str, u64, u64)> = Vec::new();
                for f in &faults {
                    let out = unsync.run_with_golden(&t, std::slice::from_ref(f), Some(&golden));
                    s.injected += 1;
                    s.detected += out.detections;
                    s.unrecoverable += out.unrecoverable;
                    s.silent_corruptions += u64::from(!out.memory_matches_golden);
                    s.correct += u64::from(out.correct());
                    let name = target_name(f.site.target);
                    match by_target.iter_mut().find(|(n, _, _)| *n == name) {
                        Some(e) => {
                            e.1 += 1;
                            e.2 += u64::from(out.correct());
                        }
                        None => by_target.push((name, 1, u64::from(out.correct()))),
                    }
                }
                (s, by_target)
            } else {
                // Reunion campaigns.
                let mut s = RoecArchStats::default();
                let mut by_target: Vec<(&'static str, u64, u64)> = Vec::new();
                for f in &faults {
                    let out = reunion.run_with_golden(&t, std::slice::from_ref(f), Some(&golden));
                    s.injected += 1;
                    s.detected += u64::from(out.mismatches > 0);
                    s.corrected_in_place += out.corrected_in_place;
                    s.unrecoverable += out.unrecoverable;
                    s.silent_corruptions +=
                        u64::from(out.silent_faults > 0 || !out.memory_matches_golden);
                    s.correct += u64::from(out.correct());
                    let name = target_name(f.site.target);
                    match by_target.iter_mut().find(|(n, _, _)| *n == name) {
                        Some(e) => {
                            e.1 += 1;
                            e.2 += u64::from(out.correct());
                        }
                        None => by_target.push((name, 1, u64::from(out.correct()))),
                    }
                }
                (s, by_target)
            }
        },
    );

    RoecReport {
        unsync_roec: Coverage::unsync().roec_fraction(),
        reunion_roec: Coverage::reunion().roec_fraction(),
        unsync: results[0].0,
        reunion: results[1].0,
        reunion_by_target: results[1].1.clone(),
    }
}

// ─────────────────────────── Comparators ────────────────────────────────

/// Error-free overhead of one benchmark under every redundancy
/// discipline in the repository, relative to the unprotected baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ComparatorRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// Tight-lockstep overhead vs. baseline (fraction).
    pub lockstep_overhead: f64,
    /// Reunion overhead vs. baseline (fraction).
    pub reunion_overhead: f64,
    /// Coarse-checkpointing overhead vs. baseline (fraction).
    pub checkpoint_overhead: f64,
    /// UnSync overhead vs. baseline (fraction).
    pub unsync_overhead: f64,
    /// Majority-voting TMR overhead vs. baseline (fraction).
    pub tmr_overhead: f64,
    /// FlexStep-style pair (128-instruction window) overhead vs.
    /// baseline (fraction).
    pub flex_overhead: f64,
    /// SECDED-only non-redundant core overhead vs. baseline (fraction).
    pub secded_overhead: f64,
}

/// The benchmark subset the comparator study reports (one cache-friendly
/// and one memory-bound representative from each suite).
pub const COMPARATOR_BENCHES: [Benchmark; 5] = [
    Benchmark::Bzip2,
    Benchmark::Galgel,
    Benchmark::Sha,
    Benchmark::Mcf,
    Benchmark::Qsort,
];

/// Error-free runtime overhead of every redundancy discipline —
/// lockstep, Reunion, checkpointing, UnSync — on identical workloads.
pub fn comparators(cfg: ExperimentConfig) -> Vec<ComparatorRow> {
    comparators_on(Runner::from_env(), cfg)
}

/// [`comparators`] on an explicit runner.
pub fn comparators_on(runner: Runner, cfg: ExperimentConfig) -> Vec<ComparatorRow> {
    per_benchmark(runner, &COMPARATOR_BENCHES, |bench| {
        let t = trace(bench, cfg);
        let base = baseline_cycles(bench, cfg) as f64;
        let over = |cycles: u64| cycles as f64 / base - 1.0;

        let lockstep = LockstepPair::new(CoreConfig::table1()).run(&t).cycles;
        let reunion = ReunionPair::new(CoreConfig::table1(), ReunionConfig::paper_baseline())
            .run(&t, &[])
            .cycles;
        let ckpt = {
            let mut s = trace(bench, cfg);
            let mut hooks = CheckpointHooks::new(CheckpointConfig::default());
            unsync_sim::run_stream(
                CoreConfig::table1(),
                &mut s,
                &mut hooks,
                unsync_mem::WritePolicy::WriteThrough,
            )
            .core
            .last_commit_cycle
        };
        let unsync = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline())
            .run(&t, &[])
            .cycles;
        let tmr = TmrTriple::new(CoreConfig::table1()).run(&t, &[]).cycles;
        let flex = FlexPair::new(CoreConfig::table1(), FlexConfig::paper_baseline())
            .run(&t, &[])
            .cycles;
        let secded = SecdedOnlyCore::new(CoreConfig::table1())
            .run(&t, &[])
            .cycles;
        ComparatorRow {
            bench: bench.name(),
            lockstep_overhead: over(lockstep),
            reunion_overhead: over(reunion),
            checkpoint_overhead: over(ckpt),
            unsync_overhead: over(unsync),
            tmr_overhead: over(tmr),
            flex_overhead: over(flex),
            secded_overhead: over(secded),
        }
    })
}

// ─────────────────────────── Scheme values ──────────────────────────────

/// Deterministic counters of one new scheme on one benchmark under a
/// fixed single-strike schedule — the golden/determinism surface of the
/// PR-3 schemes (TMR voting, FlexStep granularity, SECDED-only).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SchemeValuesRow {
    /// Benchmark name.
    pub bench: &'static str,
    /// Scheme metric prefix (`tmr_vote`, `flex_step`, `secded_only`).
    pub scheme: &'static str,
    /// Total cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub committed: u64,
    /// Errors detected.
    pub detections: u64,
    /// TMR majority-vote in-place repairs.
    pub corrections: u64,
    /// FlexStep window-boundary comparisons.
    pub compares: u64,
    /// SECDED single-bit strikes corrected in place.
    pub corrected_in_place: u64,
    /// Whether the run ended fully correct.
    pub correct: bool,
}

/// The benchmark subset the scheme-values study snapshots (kept small —
/// every row simulates three schemes).
pub const SCHEME_BENCHES: [Benchmark; 3] = [Benchmark::Bzip2, Benchmark::Sha, Benchmark::Qsort];

/// Counter rows for the three PR-3 schemes under one mid-trace ROB
/// strike each (core 1 for the redundant schemes, core 0 for the single
/// SECDED lane), exercising detection, correction, and comparison paths.
pub fn scheme_values(cfg: ExperimentConfig) -> Vec<SchemeValuesRow> {
    scheme_values_on(Runner::from_env(), cfg)
}

/// The three PR-3 schemes on one trace under the fixed mid-trace ROB
/// strike — shared by the synthetic and kernel scheme-values studies.
fn scheme_values_for(
    workload: &'static str,
    t: &TraceProgram,
    cfg: ExperimentConfig,
) -> [SchemeValuesRow; 3] {
    let strike = |core: usize| PairFault {
        at: cfg.inst_count / 2,
        core,
        site: unsync_fault::FaultSite {
            target: FaultTarget::Rob,
            bit_offset: 21,
        },
        kind: unsync_fault::FaultKind::Single,
    };
    let tmr = TmrTriple::new(CoreConfig::table1()).run(t, &[strike(1)]);
    let flex =
        FlexPair::new(CoreConfig::table1(), FlexConfig::paper_baseline()).run(t, &[strike(1)]);
    let secded = SecdedOnlyCore::new(CoreConfig::table1()).run(t, &[strike(0)]);
    [
        SchemeValuesRow {
            bench: workload,
            scheme: "tmr_vote",
            cycles: tmr.core.cycles,
            committed: tmr.core.committed,
            detections: tmr.core.detections,
            corrections: tmr.corrections,
            compares: 0,
            corrected_in_place: 0,
            correct: tmr.correct(),
        },
        SchemeValuesRow {
            bench: workload,
            scheme: "flex_step",
            cycles: flex.core.cycles,
            committed: flex.core.committed,
            detections: flex.core.detections,
            corrections: 0,
            compares: flex.compares,
            corrected_in_place: 0,
            correct: flex.correct(),
        },
        SchemeValuesRow {
            bench: workload,
            scheme: "secded_only",
            cycles: secded.core.cycles,
            committed: secded.core.committed,
            detections: secded.core.detections,
            corrections: 0,
            compares: 0,
            corrected_in_place: secded.corrected_in_place,
            correct: secded.correct(),
        },
    ]
}

/// [`scheme_values`] on an explicit runner.
pub fn scheme_values_on(runner: Runner, cfg: ExperimentConfig) -> Vec<SchemeValuesRow> {
    let rows = per_benchmark(runner, &SCHEME_BENCHES, |bench| {
        scheme_values_for(bench.name(), &trace(bench, cfg), cfg)
    });
    rows.into_iter().flatten().collect()
}

/// The kernel workloads the scheme-values study also snapshots — the
/// measured real-ISA counterpart of [`SCHEME_BENCHES`].
pub const SCHEME_KERNELS: [Kernel; 4] = [
    Kernel::Qsort,
    Kernel::Crc32,
    Kernel::Dijkstra,
    Kernel::Stringsearch,
];

/// [`scheme_values_on`] over the real-ISA kernel backend: identical
/// schemes and strike schedule, but the traces are measured kernel
/// executions (`kernel:*` rows). These rows are appended *after* the
/// synthetic rows in `tests/golden/schemes.jsonl`, never interleaved,
/// so every pre-existing golden row stays byte-identical.
pub fn kernel_scheme_values_on(runner: Runner, cfg: ExperimentConfig) -> Vec<SchemeValuesRow> {
    let rows = runner.map(&SCHEME_KERNELS, |&kernel| {
        let t = kernel.source(cfg.inst_count, cfg.seed).trace();
        scheme_values_for(kernel.spec_name(), &t, cfg)
    });
    rows.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentConfig {
        ExperimentConfig {
            inst_count: 8_000,
            seed: 1,
        }
    }

    #[test]
    fn fig4_has_all_benchmarks_and_the_paper_shape() {
        let rows = fig4(quick());
        assert_eq!(rows.len(), unsync_workloads::Benchmark::all().len());
        // UnSync is cheaper than Reunion on average.
        let avg_r: f64 = rows.iter().map(|r| r.reunion_overhead).sum::<f64>() / rows.len() as f64;
        let avg_u: f64 = rows.iter().map(|r| r.unsync_overhead).sum::<f64>() / rows.len() as f64;
        assert!(avg_r > avg_u, "reunion {avg_r} vs unsync {avg_u}");
        assert!(avg_u < 0.05, "unsync must stay near-baseline: {avg_u}");
    }

    #[test]
    fn fig5_degrades_with_fi_and_latency() {
        let cells = fig5(quick(), &[Benchmark::Galgel]);
        assert_eq!(cells.len(), FIG5_POINTS.len());
        let first = cells.first().unwrap();
        let last = cells.last().unwrap();
        assert!(last.reunion_norm > first.reunion_norm, "{cells:?}");
        // UnSync does not depend on the FI at all.
        assert!((last.unsync_norm - first.unsync_norm).abs() < 1e-9);
    }

    #[test]
    fn fig6_small_cb_is_worse() {
        let rows = fig6(quick(), &[Benchmark::Rijndael]);
        let tiny = rows.iter().find(|r| r.cb_bytes == 16).unwrap();
        let big = rows.iter().find(|r| r.cb_bytes == 4096).unwrap();
        assert!(tiny.unsync_norm >= big.unsync_norm, "{tiny:?} vs {big:?}");
        assert!(tiny.cb_full_stall_cycles > big.cb_full_stall_cycles);
    }

    #[test]
    fn ser_sweep_is_flat_at_realistic_rates_with_a_break_even() {
        let s = ser_sweep(quick(), &[Benchmark::Gzip, Benchmark::Sha]);
        // Flat from 1e-17 to 1e-7 (the paper's observation).
        let ipc_at = |rate: f64, v: &[f64]| {
            let i = s
                .rates
                .iter()
                .position(|&r| (r - rate).abs() / rate < 1e-6)
                .unwrap();
            v[i]
        };
        let u_lo = ipc_at(1e-17, &s.unsync_ipc);
        let u_hi = ipc_at(1e-7, &s.unsync_ipc);
        assert!((u_lo - u_hi).abs() / u_lo < 1e-3, "flat region");
        // UnSync ahead at realistic rates.
        assert!(u_lo > ipc_at(1e-17, &s.reunion_ipc));
        // A break-even exists and is a high (unrealistic) rate.
        let be = s.break_even.expect("break-even must exist");
        assert!(be > 1e-7, "break-even {be}");
    }

    #[test]
    fn scheme_values_exercise_every_scheme_path() {
        let rows = scheme_values(quick());
        assert_eq!(rows.len(), SCHEME_BENCHES.len() * 3);
        for r in &rows {
            match r.scheme {
                "tmr_vote" => {
                    assert_eq!(r.corrections, 1, "{r:?}");
                    assert!(r.correct, "{r:?}");
                }
                "flex_step" => {
                    assert!(r.compares > 0, "{r:?}");
                    assert!(r.correct, "{r:?}");
                }
                "secded_only" => {
                    assert_eq!(r.corrected_in_place, 1, "{r:?}");
                    assert!(r.correct, "{r:?}");
                }
                other => panic!("unexpected scheme {other}"),
            }
            assert!(r.detections <= 1, "{r:?}");
            assert!(r.cycles > 0 && r.committed > 0, "{r:?}");
        }
    }

    #[test]
    fn roec_unsync_dominates() {
        let r = roec(quick(), 12);
        assert!(r.unsync_roec > r.reunion_roec);
        assert_eq!(r.unsync.injected, 12);
        assert_eq!(
            r.unsync.correct, 12,
            "UnSync recovers everything: {:?}",
            r.unsync
        );
        assert!(r.reunion.correct <= r.reunion.injected);
    }
}
