//! The batched campaign engine (ROADMAP: "fault campaigns as a
//! service").
//!
//! ROEC-style vulnerability numbers only become statistically
//! meaningful at thousands of strikes per structure, and replay-style
//! detection studies run the same workload grid hundreds of times
//! over — so the grid loop, not the simulator, is what has to scale.
//! This module promotes the deterministic parallel [`crate::Runner`]
//! pattern
//! into a streaming pipeline:
//!
//! * A [`CampaignGrid`] names a full experiment request — scheme ×
//!   workload source × seed × optional [`StrikePlan`] — and
//!   [`CampaignGrid::expand`] flattens it into [`CampaignJob`]s in a
//!   fixed grid order. Each job derives its private SplitMix64 stream
//!   from [`job_seed_named`], so results are a pure function of the
//!   job alone: bit-identical across worker counts, reruns, and
//!   resumes.
//! * [`CampaignEngine::run_streaming`] shards pending jobs round-robin
//!   across per-worker deques (idle workers steal from the back of a
//!   victim's deque — `campaign.steals`), and finished records flow in
//!   small newline-joined chunks through a [`BoundedQueue`] to a
//!   dedicated writer thread that appends JSONL incrementally. The
//!   queue exerts backpressure: a full queue blocks the producing
//!   worker
//!   (`campaign.backpressure_stalls`) instead of buffering unboundedly
//!   behind a barrier, and its occupancy is observable as the
//!   `campaign.queue_depth` gauge / `campaign.queue_depth_samples`
//!   histogram.
//! * Because records hit disk as they complete, a killed run leaves a
//!   valid prefix. On restart the engine replays the partial log,
//!   validates the header against the grid, drops torn or meta lines,
//!   and skips completed job ids — a resumed run's normalized output
//!   is byte-identical to an uninterrupted one.
//!
//! Strike jobs reuse the memoized golden image
//! ([`golden_memory_source`]) both for SDC classification *and* —
//! unlike the sequential reference path — inside the driver via
//! `run_campaign_lane`, eliminating the per-job golden re-execution
//! that dominates `Runner::map`-style grids. Records are unaffected: a
//! trace's golden image is unique.

use std::collections::{HashMap, HashSet, VecDeque};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use unsync_core::{UnsyncConfig, UnsyncPair};
use unsync_exec::{FlexConfig, FlexPair, RedundantDriver, SecdedOnlyCore, TmrTriple};
use unsync_fault::uncore::{StrikePlan, UncoreTarget};
use unsync_isa::exec::splitmix64;
use unsync_isa::TraceProgram;
use unsync_mem::{L2ContentionConfig, WritePolicy};
use unsync_obs::prof;
use unsync_reunion::{CheckpointConfig, CheckpointHooks, LockstepPair, ReunionConfig, ReunionPair};
use unsync_sim::{metrics, CoreConfig};
use unsync_workloads::{WorkloadSource, WorkloadSpec};

use crate::experiments::ExperimentConfig;
use crate::roec_uncore::{classify_strike_result, run_scheme_with_strikes, strike_salt};
use crate::runlog::{metrics_snapshot_json, prof_block_json, Json};
use crate::runner::{baseline_cycles_source, golden_memory_source, job_seed_named};

/// A grid of experiment requests: the cartesian product of workloads ×
/// seeds × schemes, each cell either one comparator run (`strikes:
/// None`) or one run per strike-plan cell (`strikes: Some`).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignGrid {
    /// Experiment name: the JSONL log is `<name>.jsonl`.
    pub name: String,
    /// Instructions per trace.
    pub inst_count: u64,
    /// Trace seeds swept.
    pub seeds: Vec<u64>,
    /// Workload sources swept (synthetic or `kernel:` backends).
    pub workloads: Vec<WorkloadSpec>,
    /// Scheme names swept (see `run_compare_job` /
    /// [`crate::roec_uncore::SCHEMES`] for the two vocabularies).
    pub schemes: Vec<&'static str>,
    /// When set, every (workload, seed, scheme) cell expands into one
    /// job per strike of the plan instead of one comparator job.
    pub strikes: Option<StrikePlan>,
    /// Shared-L2 contention model for strike runs (bank arbiters only
    /// exist — and can only be struck live — when this is on).
    pub contention: Option<L2ContentionConfig>,
}

impl CampaignGrid {
    /// Total number of jobs the grid expands into.
    pub fn len(&self) -> usize {
        let per_cell = self.strikes.as_ref().map_or(1, StrikePlan::len);
        self.workloads.len() * self.seeds.len() * self.schemes.len() * per_cell
    }

    /// Whether the grid expands into no jobs at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flattens the grid into jobs in fixed grid order —
    /// workload-major, then seed, then scheme, then strike cell — with
    /// ids numbering that order. Job ids are the `row` keys of the
    /// JSONL log, so the order is part of the on-disk contract.
    pub fn expand(&self) -> Vec<CampaignJob> {
        let _t = prof::scope("campaign.expand");
        let mut jobs = Vec::with_capacity(self.len());
        for &workload in &self.workloads {
            for &seed in &self.seeds {
                for &scheme in &self.schemes {
                    match &self.strikes {
                        None => jobs.push(CampaignJob {
                            id: jobs.len() as u64,
                            workload,
                            inst_count: self.inst_count,
                            seed,
                            scheme,
                            kind: JobKind::Compare,
                        }),
                        Some(plan) => {
                            for (target, index) in plan.cells() {
                                jobs.push(CampaignJob {
                                    id: jobs.len() as u64,
                                    workload,
                                    inst_count: self.inst_count,
                                    seed,
                                    scheme,
                                    kind: JobKind::Strike { target, index },
                                });
                            }
                        }
                    }
                }
            }
        }
        jobs
    }

    /// The log's header line: the grid spec a partial log is validated
    /// against on resume. A pure function of the grid, so two runs of
    /// the same grid — interrupted or not — agree byte-for-byte.
    pub fn header_line(&self) -> String {
        let strikes = match &self.strikes {
            None => Json::Null,
            Some(plan) => Json::obj()
                .field(
                    "targets",
                    Json::Arr(
                        plan.targets
                            .iter()
                            .map(|t| Json::Str(t.label().to_string()))
                            .collect(),
                    ),
                )
                .field("strikes_per_cell", plan.strikes_per_cell)
                .field("horizon", plan.horizon)
                .field("alternate_directed", u64::from(plan.alternate_directed)),
        };
        let config = Json::obj()
            .field("inst_count", self.inst_count)
            .field(
                "seeds",
                Json::Arr(self.seeds.iter().map(|&s| Json::U64(s)).collect()),
            )
            .field(
                "workloads",
                Json::Arr(
                    self.workloads
                        .iter()
                        .map(|w| Json::Str(w.name().to_string()))
                        .collect(),
                ),
            )
            .field(
                "schemes",
                Json::Arr(
                    self.schemes
                        .iter()
                        .map(|s| Json::Str((*s).to_string()))
                        .collect(),
                ),
            )
            .field("strikes", strikes)
            .field("contention", u64::from(self.contention.is_some()));
        Json::obj()
            .field("kind", "header")
            .field("experiment", self.name.as_str())
            .field("schema", 1u64)
            .field("config", config)
            .render()
    }
}

/// What one job runs on top of its workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// One fault-free comparator run: cycles vs. the memoized baseline.
    Compare,
    /// One strike of the grid's [`StrikePlan`]: inject, classify.
    Strike {
        /// The struck uncore structure.
        target: UncoreTarget,
        /// Strike index within the (structure, scheme) cell.
        index: u64,
    },
}

/// One expanded unit of campaign work — a pure function of its fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignJob {
    /// Grid-order index; doubles as the record's `row` key.
    pub id: u64,
    /// The workload backend.
    pub workload: WorkloadSpec,
    /// Instructions in the trace.
    pub inst_count: u64,
    /// Trace seed.
    pub seed: u64,
    /// Scheme name.
    pub scheme: &'static str,
    /// Compare or strike.
    pub kind: JobKind,
}

impl CampaignJob {
    fn experiment(&self) -> ExperimentConfig {
        ExperimentConfig {
            inst_count: self.inst_count,
            seed: self.seed,
        }
    }

    /// The job's salt into [`job_seed_named`]. Strike jobs reuse the
    /// `roec` grid's [`strike_salt`] chain so campaign strikes over
    /// the roec workload/seed reproduce `roec` placements
    /// byte-for-byte; compare jobs hash the scheme under a distinct
    /// prefix so the two kinds can never collide.
    pub fn salt(&self) -> u64 {
        match self.kind {
            JobKind::Strike { target, index } => strike_salt(target, self.scheme, index),
            JobKind::Compare => {
                let mut h = 0xc0f_f33_u64;
                for b in self.scheme.bytes() {
                    h = splitmix64(h ^ u64::from(b));
                }
                splitmix64(h)
            }
        }
    }

    /// The job's private deterministic stream seed.
    pub fn stream_seed(&self) -> u64 {
        job_seed_named(self.experiment(), self.workload.name(), self.salt())
    }
}

/// A per-run memo of generated traces, keyed by `(workload name,
/// seed)` — every job of a campaign cell shares one trace, and
/// generating it is a measurable fraction of a short job, so the
/// engine builds the memo up front and workers borrow from it. The
/// reference paths ([`run_collected`], [`run_mapped`]) pass `None` and
/// regenerate per job, as the pre-engine campaigns did.
type TraceMemo = HashMap<(&'static str, u64), TraceProgram>;

fn trace_memo(grid: &CampaignGrid, jobs: &[CampaignJob]) -> TraceMemo {
    let mut memo = TraceMemo::new();
    for job in jobs {
        memo.entry((job.workload.name(), job.seed))
            .or_insert_with(|| job.workload.source(grid.inst_count, job.seed).trace());
    }
    memo
}

/// Runs one job and renders its JSONL record line (framed with `row` =
/// job id, so normalized logs diff independently of completion order).
///
/// `reuse_cached_golden` feeds the memoized golden image into the
/// driver so strike jobs skip the per-job golden re-execution; `false`
/// preserves the sequential reference cost model
/// ([`run_collected`]). Records are byte-identical either way.
pub fn run_job(grid: &CampaignGrid, job: CampaignJob, reuse_cached_golden: bool) -> String {
    run_job_inner(grid, job, reuse_cached_golden, None)
}

fn run_job_inner(
    grid: &CampaignGrid,
    job: CampaignJob,
    reuse_cached_golden: bool,
    memo: Option<&TraceMemo>,
) -> String {
    let memoized = memo.and_then(|m| m.get(&(job.workload.name(), job.seed)));
    let generated;
    let trace = match memoized {
        Some(t) => t,
        None => {
            generated = job.workload.source(job.inst_count, job.seed).trace();
            &generated
        }
    };
    let fields = match job.kind {
        JobKind::Compare => {
            let _t = prof::scope("campaign.dispatch.compare");
            run_compare_job(job, trace)
        }
        JobKind::Strike { target, index } => {
            let _t = prof::scope("campaign.dispatch.strike");
            run_strike_job(grid, job, trace, target, index, reuse_cached_golden)
        }
    };
    let mut framed = Json::obj().field("kind", "record").field("row", job.id);
    if let (Json::Obj(dst), Json::Obj(pairs)) = (&mut framed, fields) {
        dst.extend(pairs);
    }
    metrics::global().counter("campaign.jobs_completed").inc();
    framed.render()
}

/// One fault-free comparator run: `scheme` cycles against the memoized
/// unprotected baseline. The scheme vocabulary matches the
/// `comparators` experiment.
fn run_compare_job(job: CampaignJob, t: &TraceProgram) -> Json {
    let source = job.workload.source(job.inst_count, job.seed);
    let base = baseline_cycles_source(&source);
    let cycles = match job.scheme {
        "lockstep" => LockstepPair::new(CoreConfig::table1()).run(t).cycles,
        "reunion" => {
            ReunionPair::new(CoreConfig::table1(), ReunionConfig::paper_baseline())
                .run(t, &[])
                .cycles
        }
        "checkpoint" => {
            let mut s = t.clone();
            let mut hooks = CheckpointHooks::new(CheckpointConfig::default());
            unsync_sim::run_stream(
                CoreConfig::table1(),
                &mut s,
                &mut hooks,
                WritePolicy::WriteThrough,
            )
            .core
            .last_commit_cycle
        }
        "unsync_pair" => {
            UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline())
                .run(t, &[])
                .cycles
        }
        "tmr_vote" => TmrTriple::new(CoreConfig::table1()).run(t, &[]).cycles,
        "flex" => {
            FlexPair::new(CoreConfig::table1(), FlexConfig::paper_baseline())
                .run(t, &[])
                .cycles
        }
        "secded_only" => SecdedOnlyCore::new(CoreConfig::table1()).run(t, &[]).cycles,
        other => panic!("unknown comparator scheme {other}"),
    };
    Json::obj()
        .field("workload", job.workload.name())
        .field("inst_count", job.inst_count)
        .field("seed", job.seed)
        .field("scheme", job.scheme)
        .field("job", "compare")
        .field("cycles", cycles)
        .field("baseline_cycles", base)
        .field("overhead", cycles as f64 / base as f64 - 1.0)
}

/// One strike of the grid's plan: inject, journal, classify — the same
/// record fields as the `roec_uncore` campaign plus the grid axes.
fn run_strike_job(
    grid: &CampaignGrid,
    job: CampaignJob,
    trace: &TraceProgram,
    target: UncoreTarget,
    index: u64,
    reuse_cached_golden: bool,
) -> Json {
    let plan = grid
        .strikes
        .as_ref()
        .expect("strike job implies a strike plan");
    let strike = plan.strike(target, index, job.stream_seed(), 0);
    let source = job.workload.source(job.inst_count, job.seed);
    let golden = golden_memory_source(&source);
    let contention = grid
        .contention
        .unwrap_or_else(L2ContentionConfig::many_core);
    let driver = RedundantDriver::new(CoreConfig::table1()).with_l2_contention(contention);
    let supplied = reuse_cached_golden.then_some(&*golden);
    let result = run_scheme_with_strikes(&driver, job.scheme, trace, vec![strike], supplied);
    let (outcome, memory_matches) = classify_strike_result(&result, &golden);
    Json::obj()
        .field("workload", job.workload.name())
        .field("inst_count", job.inst_count)
        .field("seed", job.seed)
        .field("scheme", job.scheme)
        .field("job", "strike")
        .field("structure", target.label())
        .field("strike", index)
        .field("cycle", strike.cycle)
        .field("bit_offset", strike.site.bit_offset)
        .field(
            "fault_kind",
            match strike.kind {
                unsync_fault::FaultKind::Single => "single",
                unsync_fault::FaultKind::AdjacentDouble => "double",
            },
        )
        .field("directed", u64::from(strike.directed))
        .field("outcome", outcome.label())
        .field("detections", result.out.detections)
        .field("recoveries", result.out.recoveries)
        .field("memory_matches", u64::from(memory_matches))
}

/// A bounded MPSC channel built on `Mutex` + `Condvar` (no external
/// crates): producers block while the queue is full — that stall is
/// the backpressure, counted as `campaign.backpressure_stalls` — and
/// the consumer blocks while it is empty. [`BoundedQueue::pop`]
/// returns `None` once the queue is closed *and* drained.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    // Handles resolved once at construction: updates are lock-free
    // atomics, never registry lookups on the hot path.
    stalls: metrics::Counter,
    depth: metrics::Gauge,
    depth_samples: metrics::Histogram,
    // `prof.campaign.queue_wait` — wall-clock µs producers spent
    // blocked on a full queue (host domain, one observation per stall
    // episode).
    queue_wait: metrics::Histogram,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// An open queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        let m = metrics::global();
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
            stalls: m.counter("campaign.backpressure_stalls"),
            depth: m.gauge("campaign.queue_depth"),
            depth_samples: m.histogram("campaign.queue_depth_samples", QUEUE_DEPTH_BOUNDS),
            queue_wait: metrics::prof_histogram("campaign.queue_wait"),
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Each stall
    /// episode increments `campaign.backpressure_stalls`; every push
    /// samples the post-push depth into the `campaign.queue_depth`
    /// gauge and `campaign.queue_depth_samples` histogram.
    pub fn push(&self, item: T) {
        let mut state = self.state.lock().expect("campaign queue poisoned");
        if state.items.len() >= self.capacity {
            self.stalls.inc();
            let stalled = Instant::now();
            while state.items.len() >= self.capacity {
                state = self.not_full.wait(state).expect("campaign queue poisoned");
            }
            self.queue_wait
                .observe(stalled.elapsed().as_secs_f64() * 1e6);
        }
        let was_empty = state.items.is_empty();
        state.items.push_back(item);
        let depth = state.items.len() as f64;
        self.depth.set(depth);
        self.depth_samples.observe(depth);
        drop(state);
        // The consumer only ever waits on an empty queue, so a push
        // onto a non-empty one has nobody to wake — skipping the
        // notify keeps producers from pointlessly preempting the
        // writer on small machines.
        if was_empty {
            self.not_empty.notify_one();
        }
    }

    /// Dequeues the oldest item, blocking while the queue is open but
    /// empty; `None` once closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("campaign queue poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                let was_full = state.items.len() + 1 >= self.capacity;
                self.depth.set(state.items.len() as f64);
                drop(state);
                // Producers only wait while the queue is full.
                if was_full {
                    self.not_full.notify_one();
                }
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("campaign queue poisoned");
        }
    }

    /// Moves up to `max` items into `out` in one lock acquisition,
    /// blocking while the queue is open but empty. Returns `false`
    /// once closed and drained. The writer thread consumes through
    /// this so one wakeup amortizes one file flush over a whole batch.
    pub fn drain_into(&self, out: &mut Vec<T>, max: usize) -> bool {
        let mut state = self.state.lock().expect("campaign queue poisoned");
        loop {
            if !state.items.is_empty() {
                let was_full = state.items.len() >= self.capacity;
                while out.len() < max {
                    let Some(item) = state.items.pop_front() else {
                        break;
                    };
                    out.push(item);
                }
                self.depth.set(state.items.len() as f64);
                drop(state);
                if was_full {
                    self.not_full.notify_all();
                }
                return true;
            }
            if state.closed {
                return false;
            }
            state = self.not_empty.wait(state).expect("campaign queue poisoned");
        }
    }

    /// Closes the queue: producers must be done; the consumer drains
    /// what remains and then sees `None`.
    pub fn close(&self) {
        self.state.lock().expect("campaign queue poisoned").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Histogram bounds for queue-depth samples (powers of two up to the
/// default capacity).
const QUEUE_DEPTH_BOUNDS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

/// Records the writer consumes — and amortizes one flush over — per
/// queue wakeup.
const WRITER_BATCH: usize = 32;

/// Records a worker accumulates into one newline-joined chunk before
/// pushing it through the queue. Chunking amortizes the queue lock and
/// the consumer wakeup — on a single-CPU host each wakeup is a forced
/// context switch out of the producing worker — without giving up
/// bounded streaming: at most `queue_capacity × PRODUCER_BATCH`
/// records are ever in flight.
const PRODUCER_BATCH: usize = 8;

/// What one [`CampaignEngine::run_streaming`] call did.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// The JSONL log path.
    pub path: PathBuf,
    /// Worker threads used.
    pub workers: usize,
    /// Jobs in the full grid.
    pub jobs_total: usize,
    /// Jobs executed this call.
    pub jobs_run: usize,
    /// Jobs skipped because a resumed log already held their records.
    pub jobs_skipped: usize,
    /// Wall-clock milliseconds of the streaming run (expansion through
    /// writer join, excluding the meta stamp).
    pub wall_ms: u64,
}

impl CampaignReport {
    /// Jobs per wall-clock second for the jobs actually executed.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall_ms == 0 {
            return self.jobs_run as f64 * 1000.0;
        }
        self.jobs_run as f64 * 1000.0 / self.wall_ms as f64
    }
}

/// The streaming campaign engine: worker count and writer-queue bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignEngine {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Bounded writer-queue capacity, in chunks of up to
    /// `PRODUCER_BATCH` records each.
    pub queue_capacity: usize,
}

impl CampaignEngine {
    /// An engine with `workers` threads and the default 64-record
    /// writer queue.
    pub fn new(workers: usize) -> CampaignEngine {
        CampaignEngine {
            workers: workers.max(1),
            queue_capacity: 64,
        }
    }

    /// Runs `grid`, streaming records to `path` as JSONL, resuming
    /// from a partial log at the same path if one exists. Returns the
    /// report; errors are I/O or header-mismatch strings.
    pub fn run_streaming(
        &self,
        grid: &CampaignGrid,
        path: &Path,
    ) -> Result<CampaignReport, String> {
        let started = Instant::now();
        let jobs = grid.expand();
        let header = grid.header_line();
        let completed = replay_partial_log(path, &header)?;
        let pending: Vec<CampaignJob> = jobs
            .iter()
            .filter(|j| !completed.contains(&j.id))
            .copied()
            .collect();
        let jobs_skipped = jobs.len() - pending.len();
        let memo = trace_memo(grid, &pending);

        // Round-robin shard pending jobs across per-worker deques.
        let deques: Vec<Mutex<VecDeque<CampaignJob>>> = (0..self.workers)
            .map(|w| {
                Mutex::new(
                    pending
                        .iter()
                        .skip(w)
                        .step_by(self.workers)
                        .copied()
                        .collect(),
                )
            })
            .collect();

        let queue: BoundedQueue<String> = BoundedQueue::new(self.queue_capacity);
        let mut file = fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("open {}: {e}", path.display()))?;
        let write_error: Mutex<Option<String>> = Mutex::new(None);

        metrics::global()
            .gauge("campaign.workers")
            .set(self.workers as f64);
        std::thread::scope(|outer| {
            let writer = outer.spawn(|| {
                // Handle resolved once per run, observed per flushed
                // batch (the cached-handle rule for hot phases).
                let flush_prof = prof::handle("campaign.writer_flush");
                let mut batch: Vec<String> = Vec::with_capacity(WRITER_BATCH);
                while queue.drain_into(&mut batch, WRITER_BATCH) {
                    let mut text = String::with_capacity(batch.iter().map(|l| l.len() + 1).sum());
                    for line in batch.drain(..) {
                        text.push_str(&line);
                        text.push('\n');
                    }
                    let flush_started = Instant::now();
                    let io = file.write_all(text.as_bytes()).and_then(|()| file.flush());
                    flush_prof.observe(flush_started.elapsed().as_secs_f64() * 1e6);
                    if let Err(e) = io {
                        *write_error.lock().expect("write error slot poisoned") =
                            Some(format!("append {}: {e}", path.display()));
                        break;
                    }
                }
            });
            std::thread::scope(|inner| {
                for w in 0..self.workers {
                    let deques = &deques;
                    let queue = &queue;
                    let memo = &memo;
                    inner.spawn(move || {
                        let m = metrics::global();
                        let mut chunk = String::new();
                        let mut chunk_len = 0usize;
                        loop {
                            // Own deque first (front), then steal from
                            // the back of the first non-empty victim.
                            let mut job = deques[w]
                                .lock()
                                .expect("campaign deque poisoned")
                                .pop_front();
                            if job.is_none() {
                                let _t = prof::scope("campaign.steal");
                                for (v, victim) in deques.iter().enumerate() {
                                    if v == w {
                                        continue;
                                    }
                                    let stolen =
                                        victim.lock().expect("campaign deque poisoned").pop_back();
                                    if stolen.is_some() {
                                        m.counter("campaign.steals").inc();
                                        job = stolen;
                                        break;
                                    }
                                }
                            }
                            let Some(job) = job else {
                                if !chunk.is_empty() {
                                    queue.push(std::mem::take(&mut chunk));
                                }
                                break;
                            };
                            if !chunk.is_empty() {
                                chunk.push('\n');
                            }
                            chunk.push_str(&run_job_inner(grid, job, true, Some(memo)));
                            chunk_len += 1;
                            if chunk_len >= PRODUCER_BATCH {
                                queue.push(std::mem::take(&mut chunk));
                                chunk_len = 0;
                            }
                        }
                    });
                }
            });
            queue.close();
            writer.join().expect("campaign writer panicked");
        });
        if let Some(e) = write_error
            .lock()
            .expect("write error slot poisoned")
            .take()
        {
            return Err(e);
        }

        let wall_ms = started.elapsed().as_millis() as u64;
        let report = CampaignReport {
            path: path.to_path_buf(),
            workers: self.workers,
            jobs_total: jobs.len(),
            jobs_run: pending.len(),
            jobs_skipped,
            wall_ms,
        };
        let meta = Json::obj()
            .field("kind", "meta")
            .field("schema", 2u64)
            .field("experiment", grid.name.as_str())
            .field("workers", self.workers)
            .field("wall_clock_ms", wall_ms)
            .field("jobs", jobs.len() as u64)
            .field("jobs_run", report.jobs_run as u64)
            .field("jobs_skipped", jobs_skipped as u64)
            .field("jobs_per_sec", report.jobs_per_sec())
            .field("prof", prof_block_json())
            .field("metrics", metrics_snapshot_json());
        let mut line = meta.render();
        line.push('\n');
        fs::OpenOptions::new()
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(line.as_bytes()))
            .map_err(|e| format!("append meta {}: {e}", path.display()))?;
        Ok(report)
    }
}

/// Replays a partial run log at `path`: validates the header against
/// the grid's, keeps parseable record lines (dropping the meta line
/// and any torn trailing line), rewrites the file to that valid
/// prefix, and returns the completed job ids. A missing file starts a
/// fresh log containing only the header.
fn replay_partial_log(path: &Path, header: &str) -> Result<HashSet<u64>, String> {
    let mut completed = HashSet::new();
    let mut kept: Vec<&str> = vec![header];
    let existing = match fs::read_to_string(path) {
        Ok(text) => Some(text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    if let Some(text) = &existing {
        let mut lines = text.lines();
        match lines.next() {
            Some(first) if first == header => {}
            Some(_) => {
                return Err(format!(
                    "refusing to resume {}: header does not match this grid \
                     (the grid changed, or the log belongs to another experiment)",
                    path.display()
                ));
            }
            None => {}
        }
        for line in lines {
            let Ok(json) = Json::parse(line) else {
                continue; // torn tail of a killed run
            };
            if json.get("kind").and_then(Json::as_str) != Some("record") {
                continue; // stale meta line from a finished earlier run
            }
            let Some(row) = json.get("row").and_then(Json::as_u64) else {
                continue;
            };
            if completed.insert(row) {
                kept.push(line);
            }
        }
    }
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let mut text = kept.join("\n");
    text.push('\n');
    fs::write(path, text).map_err(|e| format!("rewrite {}: {e}", path.display()))?;
    Ok(completed)
}

/// The sequential reference path: runs the whole grid in grid order on
/// the caller's thread — no sharded deques, no streaming, and no
/// cached-golden reuse inside the driver (each strike job re-executes
/// the golden run, as the pre-engine `Runner::map` campaigns did) —
/// and returns the rendered record lines. `BENCH_campaign.json`
/// baselines the engine against this.
pub fn run_collected(grid: &CampaignGrid) -> Vec<String> {
    let mut lines = vec![grid.header_line()];
    for job in grid.expand() {
        lines.push(run_job(grid, job, false));
    }
    lines
}

/// The pre-engine parallel path: the same grid through
/// [`crate::Runner::map`]'s barrier-collected worker pool at the
/// engine's
/// worker count, with the pre-engine per-job cost model (trace
/// regenerated and golden re-executed inside the driver for every
/// job). This is what the roec-style campaigns paid before the
/// streaming engine; `BENCH_campaign.json` reports it beside the
/// engine at the same worker count.
pub fn run_mapped(grid: &CampaignGrid, runner: &crate::runner::Runner) -> Vec<String> {
    let jobs = grid.expand();
    let mut lines = vec![grid.header_line()];
    lines.extend(runner.map(&jobs, |job| run_job(grid, *job, false)));
    lines
}

/// Normalizes JSONL text for byte comparison: the header line followed
/// by record lines sorted by `row`, with meta and unparseable lines
/// dropped. Streaming runs complete out of order and resumed runs
/// interleave old and new records; normalized, both must equal the
/// sequential reference exactly.
pub fn normalized_lines(text: &str) -> Vec<String> {
    let mut header = None;
    let mut records: Vec<(u64, &str)> = Vec::new();
    for line in text.lines() {
        let Ok(json) = Json::parse(line) else {
            continue;
        };
        match json.get("kind").and_then(Json::as_str) {
            Some("header") if header.is_none() => header = Some(line),
            Some("record") => {
                if let Some(row) = json.get("row").and_then(Json::as_u64) {
                    records.push((row, line));
                }
            }
            _ => {}
        }
    }
    records.sort_by_key(|&(row, _)| row);
    header
        .into_iter()
        .chain(records.into_iter().map(|(_, line)| line))
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsync_workloads::Benchmark;

    fn compare_grid() -> CampaignGrid {
        CampaignGrid {
            name: "campaign_test_compare".into(),
            inst_count: 120,
            seeds: vec![7, 8],
            workloads: vec![
                WorkloadSpec::Synthetic(Benchmark::Gzip),
                WorkloadSpec::Synthetic(Benchmark::Mcf),
            ],
            schemes: vec!["lockstep", "unsync_pair"],
            strikes: None,
            contention: None,
        }
    }

    fn strike_grid() -> CampaignGrid {
        CampaignGrid {
            name: "campaign_test_strike".into(),
            inst_count: 120,
            seeds: vec![17],
            workloads: vec![WorkloadSpec::Synthetic(Benchmark::Gzip)],
            schemes: vec!["unsync_pair", "secded_only"],
            strikes: Some(StrikePlan::all_uncore(1, 240)),
            contention: Some(L2ContentionConfig::many_core()),
        }
    }

    #[test]
    fn expand_orders_ids_and_counts_jobs() {
        let grid = compare_grid();
        let jobs = grid.expand();
        assert_eq!(jobs.len(), grid.len());
        assert_eq!(jobs.len(), 2 * 2 * 2);
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.id, i as u64);
        }
        assert_eq!(jobs[0].workload.name(), "gzip");
        assert_eq!(jobs[0].seed, 7);
        assert_eq!(jobs[0].scheme, "lockstep");
        assert_eq!(jobs[1].scheme, "unsync_pair");
        assert_eq!(jobs[2].seed, 8);
        assert_eq!(jobs[4].workload.name(), "mcf");
    }

    #[test]
    fn stream_seeds_are_distinct_across_the_grid() {
        let mut grid = strike_grid();
        grid.seeds = vec![17, 18];
        let mut seen = std::collections::HashSet::new();
        for job in grid.expand() {
            assert!(
                seen.insert(job.stream_seed()),
                "duplicate stream seed for {job:?}"
            );
        }
    }

    #[test]
    fn bounded_queue_delivers_in_order_and_closes() {
        let q: BoundedQueue<u64> = BoundedQueue::new(2);
        q.push(1);
        q.push(2);
        assert_eq!(q.pop(), Some(1));
        q.push(3);
        q.close();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bounded_queue_backpressure_blocks_until_pop() {
        let q: BoundedQueue<u64> = BoundedQueue::new(1);
        q.push(1);
        std::thread::scope(|s| {
            s.spawn(|| q.push(2)); // must block until the pop below
            std::thread::sleep(std::time::Duration::from_millis(10));
            assert_eq!(q.pop(), Some(1));
            assert_eq!(q.pop(), Some(2));
        });
    }

    #[test]
    fn streaming_matches_sequential_reference() {
        let grid = compare_grid();
        let dir = std::env::temp_dir().join("unsync_campaign_mod_test");
        let path = dir.join("compare.jsonl.partial");
        fs::create_dir_all(&dir).unwrap();
        let _ = fs::remove_file(&path);
        let report = CampaignEngine::new(2).run_streaming(&grid, &path).unwrap();
        assert_eq!(report.jobs_run, grid.len());
        assert_eq!(report.jobs_skipped, 0);
        let streamed = normalized_lines(&fs::read_to_string(&path).unwrap());
        assert_eq!(streamed, run_collected(&grid));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn resume_skips_completed_jobs_and_stays_byte_identical() {
        let grid = strike_grid();
        let dir = std::env::temp_dir().join("unsync_campaign_mod_test");
        let path = dir.join("strike.jsonl.partial");
        fs::create_dir_all(&dir).unwrap();
        let _ = fs::remove_file(&path);
        let full = CampaignEngine::new(1).run_streaming(&grid, &path).unwrap();
        assert_eq!(full.jobs_run, grid.len());
        let complete = fs::read_to_string(&path).unwrap();

        // Kill mid-run: keep the header, the first 3 records, and a
        // torn half-line; the meta line from the finished run stays to
        // prove it gets dropped.
        let keep: Vec<&str> = complete.lines().take(4).collect();
        let truncated = format!("{}\n{{\"kind\":\"rec", keep.join("\n"));
        fs::write(&path, truncated).unwrap();

        let resumed = CampaignEngine::new(2).run_streaming(&grid, &path).unwrap();
        assert_eq!(resumed.jobs_skipped, 3);
        assert_eq!(resumed.jobs_run, grid.len() - 3);
        assert_eq!(
            normalized_lines(&fs::read_to_string(&path).unwrap()),
            normalized_lines(&complete),
            "resumed run must be byte-identical to the uninterrupted one"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn resume_refuses_a_changed_grid() {
        let grid = compare_grid();
        let dir = std::env::temp_dir().join("unsync_campaign_mod_test");
        let path = dir.join("mismatch.jsonl.partial");
        fs::create_dir_all(&dir).unwrap();
        let _ = fs::remove_file(&path);
        CampaignEngine::new(1).run_streaming(&grid, &path).unwrap();
        let mut changed = grid.clone();
        changed.inst_count += 1;
        let err = CampaignEngine::new(1)
            .run_streaming(&changed, &path)
            .unwrap_err();
        assert!(err.contains("header does not match"), "{err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn strike_records_match_roec_grid_placements() {
        // A campaign strike grid over the roec workload/seed must
        // derive the same strike parameters the roec campaign derives:
        // the salt chain and job-seed recipe are shared.
        let cfg = crate::roec_uncore::RoecUncoreConfig {
            inst_count: 120,
            seed: 17,
            strikes_per_cell: 1,
            contention: L2ContentionConfig::many_core(),
            benchmark: Benchmark::Gzip,
        };
        let grid = CampaignGrid {
            name: "campaign_roec_equiv".into(),
            inst_count: cfg.inst_count,
            seeds: vec![cfg.seed],
            workloads: vec![WorkloadSpec::Synthetic(cfg.benchmark)],
            schemes: vec!["unsync_pair"],
            strikes: Some(cfg.strike_plan()),
            contention: Some(cfg.contention),
        };
        let roec: Vec<_> = crate::roec_uncore::run_campaign(&cfg, &crate::runner::Runner::new(1))
            .into_iter()
            .filter(|r| r.scheme == "unsync_pair")
            .collect();
        let jobs = grid.expand();
        assert_eq!(jobs.len(), roec.len());
        for (job, rec) in jobs.iter().zip(&roec) {
            let line = run_job(&grid, *job, true);
            let json = Json::parse(&line).unwrap();
            assert_eq!(
                json.get("structure").and_then(Json::as_str),
                Some(rec.structure)
            );
            assert_eq!(json.get("cycle").and_then(Json::as_u64), Some(rec.cycle));
            assert_eq!(
                json.get("bit_offset").and_then(Json::as_u64),
                Some(rec.bit_offset)
            );
            assert_eq!(
                json.get("outcome").and_then(Json::as_str),
                Some(rec.outcome.label())
            );
        }
    }
}
