//! Measured statistics for the real-ISA kernel workloads.
//!
//! The synthetic generators are *calibrated to* the paper's published
//! per-benchmark numbers; the kernels let us *measure* the same
//! quantities from executed code. This module derives, per kernel, the
//! serializing fraction, instruction mix, store intensity, branch
//! mispredict rate, memory footprint, and baseline core performance —
//! everything the profile tables assume — and renders them as the
//! committed `KERNEL_stats.json` document plus a dashboard-diffable
//! `kernelstats` run log (see the `kernel_stats` binary).

use unsync_isa::OpClass;
use unsync_sim::{run_baseline, CoreConfig};
use unsync_workloads::Kernel;

use crate::runlog::{Json, RunLog};
use crate::ExperimentConfig;

/// Measured statistics of one kernel at one `(length, seed)` point.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelStatsRow {
    /// Workload-spec name (`kernel:qsort`, …).
    pub name: &'static str,
    /// Emitted trace length (equals the configured instruction count).
    pub instructions: u64,
    /// Input seed.
    pub seed: u64,
    /// Fraction of serializing instructions (traps + memory barriers) —
    /// the quantity the paper's Fig. 5 sensitivity turns on.
    pub serializing_fraction: f64,
    /// Fraction of committed stores (write-through pressure).
    pub store_fraction: f64,
    /// Fraction of loads.
    pub load_fraction: f64,
    /// Fraction of branches.
    pub branch_fraction: f64,
    /// Fraction of plain integer-ALU operations.
    pub int_alu_fraction: f64,
    /// Mispredicted share of all branches.
    pub mispredict_rate: f64,
    /// Distinct 64-byte lines the trace touches.
    pub distinct_lines: u64,
    /// Words the kernel's architectural memory holds after execution.
    pub footprint_words: u64,
    /// Single-core baseline cycles over the trace (Table I core).
    pub baseline_cycles: u64,
    /// Single-core baseline IPC.
    pub baseline_ipc: f64,
}

/// Measures every kernel at `cfg`'s `(inst_count, seed)` point: builds
/// the trace through the [`unsync_workloads::WorkloadSource`] seam,
/// takes its
/// [`unsync_isa::TraceStats`], and runs the Table I baseline core over
/// it. Fully deterministic in `cfg`.
pub fn kernel_stats(cfg: ExperimentConfig) -> Vec<KernelStatsRow> {
    Kernel::all()
        .iter()
        .map(|&kernel| {
            let source = kernel.source(cfg.inst_count, cfg.seed);
            let (trace, memory) = source.build();
            let stats = trace.stats();
            let baseline = run_baseline(CoreConfig::table1(), &mut trace.clone());
            KernelStatsRow {
                name: kernel.spec_name(),
                instructions: trace.len() as u64,
                seed: cfg.seed,
                serializing_fraction: stats.serializing_fraction(),
                store_fraction: stats.store_fraction(),
                load_fraction: stats.fraction(OpClass::Load),
                branch_fraction: stats.fraction(OpClass::Branch),
                int_alu_fraction: stats.fraction(OpClass::IntAlu),
                mispredict_rate: stats.mispredict_rate(),
                distinct_lines: stats.distinct_lines,
                footprint_words: memory.footprint_words() as u64,
                baseline_cycles: baseline.core.last_commit_cycle,
                baseline_ipc: baseline.ipc(),
            }
        })
        .collect()
}

/// The JSON fields of one row (shared by the run log and the summary).
pub fn row_json(r: &KernelStatsRow) -> Json {
    Json::obj()
        .field("name", r.name)
        .field("instructions", r.instructions)
        .field("seed", r.seed)
        .field("serializing_fraction", r.serializing_fraction)
        .field("store_fraction", r.store_fraction)
        .field("load_fraction", r.load_fraction)
        .field("branch_fraction", r.branch_fraction)
        .field("int_alu_fraction", r.int_alu_fraction)
        .field("mispredict_rate", r.mispredict_rate)
        .field("distinct_lines", r.distinct_lines)
        .field("footprint_words", r.footprint_words)
        .field("baseline_cycles", r.baseline_cycles)
        .field("baseline_ipc", r.baseline_ipc)
}

/// The `KERNEL_stats.json` document for `rows`.
pub fn stats_json(cfg: ExperimentConfig, rows: &[KernelStatsRow]) -> Json {
    Json::obj()
        .field("schema", 1u64)
        .field("inst_count", cfg.inst_count)
        .field("seed", cfg.seed)
        .field("kernels", Json::Arr(rows.iter().map(row_json).collect()))
}

/// Builds the `kernelstats` JSONL run log (header + one record per
/// kernel) so same-seed reruns diff to zero through `dashboard --diff`.
pub fn stats_log(cfg: ExperimentConfig, rows: &[KernelStatsRow]) -> RunLog {
    let mut log = RunLog::start("kernelstats", cfg);
    for r in rows {
        log.record(row_json(r));
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentConfig {
        ExperimentConfig {
            inst_count: 2_000,
            seed: 7,
        }
    }

    #[test]
    fn stats_are_deterministic_and_cover_every_kernel() {
        let rows = kernel_stats(tiny());
        assert_eq!(rows.len(), Kernel::all().len());
        assert_eq!(rows, kernel_stats(tiny()));
        for r in &rows {
            assert_eq!(r.instructions, 2_000, "{}", r.name);
            assert!(r.serializing_fraction > 0.0, "{}", r.name);
            assert!(r.store_fraction > 0.0, "{}", r.name);
            assert!(
                r.mispredict_rate > 0.0 && r.mispredict_rate < 0.5,
                "{}: {}",
                r.name,
                r.mispredict_rate
            );
            assert!(r.baseline_cycles >= r.instructions, "{}", r.name);
            assert!(r.footprint_words > 0, "{}", r.name);
        }
    }

    #[test]
    fn summary_document_parses_back() {
        let cfg = tiny();
        let rows = kernel_stats(cfg);
        let doc = Json::parse(&stats_json(cfg, &rows).render()).expect("valid json");
        assert_eq!(doc.get("schema").and_then(Json::as_u64), Some(1));
        let kernels = match doc.get("kernels") {
            Some(Json::Arr(items)) => items,
            other => panic!("kernels array missing: {other:?}"),
        };
        assert_eq!(kernels.len(), rows.len());
        for (item, row) in kernels.iter().zip(&rows) {
            assert_eq!(item.get("name").and_then(Json::as_str), Some(row.name));
            assert_eq!(
                item.get("instructions").and_then(Json::as_u64),
                Some(row.instructions)
            );
        }
    }
}
