//! A dependency-free micro-benchmark harness.
//!
//! Replaces the former Criterion benches so `cargo bench` still works
//! with zero external crates. Each benchmark runs a short warm-up, then
//! timed batches until a wall-clock budget is spent, and reports
//! median / mean / min per-iteration times. Intentionally simple: no
//! outlier rejection, no HTML — numbers on stdout for quick relative
//! comparisons, not publication.
//!
//! `UNSYNC_BENCH_MS` overrides the per-benchmark measurement budget and
//! `UNSYNC_BENCH_FILTER` (substring match) selects which benchmarks run.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-exported so bench targets can `use unsync_bench::microbench::black_box`.
pub use std::hint::black_box as bb;

/// One benchmark's measured statistics, in nanoseconds per iteration —
/// the machine-readable counterpart of the stdout row (the microbench
/// binary serializes these into `BENCH_driver.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// `group/name` of the benchmark.
    pub name: String,
    /// Median per-iteration time.
    pub median_ns: f64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
    /// Fastest observed per-iteration time.
    pub min_ns: f64,
    /// Timed batches collected.
    pub samples: u64,
    /// Iterations per batch.
    pub batch: u64,
}

/// A group of related micro-benchmarks sharing one stdout table.
pub struct Bench {
    group: String,
    budget: Duration,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

impl Bench {
    /// A named group; reads `UNSYNC_BENCH_MS` / `UNSYNC_BENCH_FILTER`.
    pub fn group(name: &str) -> Bench {
        let ms = std::env::var("UNSYNC_BENCH_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(300);
        let filter = std::env::var("UNSYNC_BENCH_FILTER")
            .ok()
            .filter(|f| !f.is_empty());
        println!("## {name}");
        Bench {
            group: name.to_string(),
            budget: Duration::from_millis(ms),
            filter,
            results: Vec::new(),
        }
    }

    /// Every result measured so far, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Consumes the group, returning its collected results.
    pub fn into_results(self) -> Vec<BenchResult> {
        self.results
    }

    /// Times `f`, printing one result row. Wrap inputs/outputs in
    /// [`black_box`] inside `f` to defeat constant folding.
    pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
        let full = format!("{}/{name}", self.group);
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up and batch sizing: grow the batch until it costs ≥ 1 ms.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            if t.elapsed() >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let deadline = Instant::now() + self.budget;
        let mut samples: Vec<f64> = Vec::new();
        while Instant::now() < deadline || samples.is_empty() {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "  {full:<44} median {:>12}  mean {:>12}  min {:>12}  ({} samples × {batch})",
            fmt_time(median),
            fmt_time(mean),
            fmt_time(samples[0]),
            samples.len(),
        );
        self.results.push(BenchResult {
            name: full,
            median_ns: median * 1e9,
            mean_ns: mean * 1e9,
            min_ns: samples[0] * 1e9,
            samples: samples.len() as u64,
            batch,
        });
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_collects_machine_readable_results() {
        let mut g = Bench {
            group: "unit".to_string(),
            budget: Duration::from_millis(1),
            filter: None,
            results: Vec::new(),
        };
        g.bench("add", || black_box(2u64) + 2);
        let results = g.into_results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "unit/add");
        assert!(results[0].median_ns > 0.0);
        assert!(results[0].samples > 0 && results[0].batch > 0);
    }

    #[test]
    fn formats_across_scales() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
    }
}
