//! Micro-benches over the experiment drivers — one group per paper
//! artifact, at reduced instruction counts so `cargo bench` finishes in
//! minutes while exercising exactly the code paths the binaries use.

use unsync_bench::experiments::{self, ExperimentConfig};
use unsync_bench::microbench::Bench;
use unsync_core::{UnsyncConfig, UnsyncPair};
use unsync_reunion::{ReunionConfig, ReunionPair};
use unsync_sim::{run_baseline, CoreConfig};
use unsync_workloads::{Benchmark, WorkloadGen};

const N: u64 = 20_000;

fn bench_table2_table3() {
    let mut g = Bench::group("tables");
    g.bench("table2/hwcost-model", unsync_hwcost::table2);
    g.bench("table3/die-projection", unsync_hwcost::table3);
}

fn bench_fig4_architectures() {
    let mut g = Bench::group("fig4");
    for bench in [Benchmark::Bzip2, Benchmark::Galgel] {
        let trace = WorkloadGen::new(bench, N, 1).collect_trace();
        g.bench(&format!("baseline/{}", bench.name()), || {
            let mut s = WorkloadGen::new(bench, N, 1);
            run_baseline(CoreConfig::table1(), &mut s)
        });
        let reunion = ReunionPair::new(CoreConfig::table1(), ReunionConfig::paper_baseline());
        g.bench(&format!("reunion-pair/{}", bench.name()), || {
            reunion.run(&trace, &[])
        });
        let unsync = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline());
        g.bench(&format!("unsync-pair/{}", bench.name()), || {
            unsync.run(&trace, &[])
        });
    }
}

fn bench_fig5_sweep_point() {
    let mut g = Bench::group("fig5");
    for (fi, lat) in [(1u32, 10u32), (30, 40)] {
        g.bench(&format!("reunion/fi{fi}-lat{lat}"), || {
            let mut s = WorkloadGen::new(Benchmark::Galgel, N, 1);
            let mut hooks = unsync_reunion::ReunionHooks::new(ReunionConfig::for_fi(fi, lat));
            unsync_sim::run_stream(
                CoreConfig::table1(),
                &mut s,
                &mut hooks,
                unsync_mem::WritePolicy::WriteThrough,
            )
        });
    }
}

fn bench_fig6_cb_sizes() {
    let mut g = Bench::group("fig6");
    let trace = WorkloadGen::new(Benchmark::Qsort, N, 1).collect_trace();
    for entries in [2usize, 256] {
        let pair = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::with_cb_entries(entries));
        g.bench(&format!("unsync-cb/{entries}"), || pair.run(&trace, &[]));
    }
}

fn bench_comparators_and_extensions() {
    let mut g = Bench::group("extensions");
    let trace = WorkloadGen::new(Benchmark::Gzip, N, 1).collect_trace();
    let lockstep = unsync_reunion::LockstepPair::new(CoreConfig::table1());
    g.bench("lockstep-pair", || lockstep.run(&trace));
    g.bench("checkpoint-hooks", || {
        let mut s = WorkloadGen::new(Benchmark::Gzip, N, 1);
        let mut hooks =
            unsync_reunion::CheckpointHooks::new(unsync_reunion::CheckpointConfig::default());
        unsync_sim::run_stream(
            CoreConfig::table1(),
            &mut s,
            &mut hooks,
            unsync_mem::WritePolicy::WriteThrough,
        )
    });
    for ways in [2usize, 3] {
        let grp = unsync_core::UnsyncGroup::new(
            CoreConfig::table1(),
            UnsyncConfig::paper_baseline(),
            ways,
        );
        g.bench(&format!("nway-group/{ways}"), || grp.run(&trace, &[]));
    }
    let ta = WorkloadGen::new_at(Benchmark::Sha, N / 2, 1, 0x1000_0000).collect_trace();
    let tb = WorkloadGen::new_at(Benchmark::Qsort, N / 2, 2, 0x9000_0000).collect_trace();
    let sys = unsync_core::UnsyncSystem::new(CoreConfig::table1(), UnsyncConfig::paper_baseline());
    let both = [ta, tb];
    g.bench("two-pair-system", || sys.run(&both));
    g.bench("trace-codec-roundtrip", || {
        let bytes = unsync_isa::encode_trace(&trace);
        unsync_isa::decode_trace(&bytes).unwrap().len()
    });
    g.bench("avf-estimate", || {
        unsync_fault::avf::estimate(&trace, 0.5, 0.5, 0.25)
    });
}

fn bench_reliability() {
    let mut g = Bench::group("reliability");
    g.bench("ser-sweep", || {
        experiments::ser_sweep(ExperimentConfig::quick(), &[Benchmark::Gzip])
    });
    g.bench("roec-campaign", || {
        experiments::roec(ExperimentConfig::quick(), 6)
    });
}

fn main() {
    bench_table2_table3();
    bench_fig4_architectures();
    bench_fig5_sweep_point();
    bench_fig6_cb_sizes();
    bench_comparators_and_extensions();
    bench_reliability();
}
