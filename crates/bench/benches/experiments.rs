//! Criterion benches over the experiment drivers — one group per paper
//! artifact, at reduced instruction counts so `cargo bench` finishes in
//! minutes while exercising exactly the code paths the binaries use.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use unsync_bench::experiments::{self, ExperimentConfig};
use unsync_core::{UnsyncConfig, UnsyncPair};
use unsync_reunion::{ReunionConfig, ReunionPair};
use unsync_sim::{run_baseline, CoreConfig};
use unsync_workloads::{Benchmark, WorkloadGen};

const N: u64 = 20_000;

fn bench_table2_table3(c: &mut Criterion) {
    c.bench_function("table2/hwcost-model", |b| b.iter(unsync_hwcost::table2));
    c.bench_function("table3/die-projection", |b| b.iter(unsync_hwcost::table3));
}

fn bench_fig4_architectures(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    for bench in [Benchmark::Bzip2, Benchmark::Galgel] {
        let trace = WorkloadGen::new(bench, N, 1).collect_trace();
        g.bench_with_input(BenchmarkId::new("baseline", bench.name()), &bench, |b, &bench| {
            b.iter(|| {
                let mut s = WorkloadGen::new(bench, N, 1);
                run_baseline(CoreConfig::table1(), &mut s)
            })
        });
        g.bench_with_input(BenchmarkId::new("reunion-pair", bench.name()), &trace, |b, t| {
            let pair = ReunionPair::new(CoreConfig::table1(), ReunionConfig::paper_baseline());
            b.iter(|| pair.run(t, &[]))
        });
        g.bench_with_input(BenchmarkId::new("unsync-pair", bench.name()), &trace, |b, t| {
            let pair = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline());
            b.iter(|| pair.run(t, &[]))
        });
    }
    g.finish();
}

fn bench_fig5_sweep_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    for (fi, lat) in [(1u32, 10u32), (30, 40)] {
        g.bench_function(BenchmarkId::new("reunion", format!("fi{fi}-lat{lat}")), |b| {
            b.iter(|| {
                let mut s = WorkloadGen::new(Benchmark::Galgel, N, 1);
                let mut hooks =
                    unsync_reunion::ReunionHooks::new(ReunionConfig::for_fi(fi, lat));
                unsync_sim::run_stream(
                    CoreConfig::table1(),
                    &mut s,
                    &mut hooks,
                    unsync_mem::WritePolicy::WriteThrough,
                )
            })
        });
    }
    g.finish();
}

fn bench_fig6_cb_sizes(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    let trace = WorkloadGen::new(Benchmark::Qsort, N, 1).collect_trace();
    for entries in [2usize, 256] {
        g.bench_with_input(BenchmarkId::new("unsync-cb", entries), &trace, |b, t| {
            let pair = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::with_cb_entries(entries));
            b.iter(|| pair.run(t, &[]))
        });
    }
    g.finish();
}

fn bench_comparators_and_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    let trace = WorkloadGen::new(Benchmark::Gzip, N, 1).collect_trace();
    g.bench_function("lockstep-pair", |b| {
        let pair = unsync_reunion::LockstepPair::new(CoreConfig::table1());
        b.iter(|| pair.run(&trace))
    });
    g.bench_function("checkpoint-hooks", |b| {
        b.iter(|| {
            let mut s = WorkloadGen::new(Benchmark::Gzip, N, 1);
            let mut hooks =
                unsync_reunion::CheckpointHooks::new(unsync_reunion::CheckpointConfig::default());
            unsync_sim::run_stream(
                CoreConfig::table1(),
                &mut s,
                &mut hooks,
                unsync_mem::WritePolicy::WriteThrough,
            )
        })
    });
    for ways in [2usize, 3] {
        g.bench_with_input(BenchmarkId::new("nway-group", ways), &trace, |b, t| {
            let grp = unsync_core::UnsyncGroup::new(
                CoreConfig::table1(),
                UnsyncConfig::paper_baseline(),
                ways,
            );
            b.iter(|| grp.run(t, &[]))
        });
    }
    g.bench_function("two-pair-system", |b| {
        let ta = WorkloadGen::new_at(Benchmark::Sha, N / 2, 1, 0x1000_0000).collect_trace();
        let tb = WorkloadGen::new_at(Benchmark::Qsort, N / 2, 2, 0x9000_0000).collect_trace();
        let sys =
            unsync_core::UnsyncSystem::new(CoreConfig::table1(), UnsyncConfig::paper_baseline());
        b.iter(|| sys.run(std::slice::from_ref(&ta).iter().chain([&tb]).cloned().collect::<Vec<_>>().as_slice()))
    });
    g.bench_function("trace-codec-roundtrip", |b| {
        b.iter(|| {
            let bytes = unsync_isa::encode_trace(&trace);
            unsync_isa::decode_trace(&bytes).unwrap().len()
        })
    });
    g.bench_function("avf-estimate", |b| {
        b.iter(|| unsync_fault::avf::estimate(&trace, 0.5, 0.5, 0.25))
    });
    g.finish();
}

fn bench_reliability(c: &mut Criterion) {
    let mut g = c.benchmark_group("reliability");
    g.sample_size(10);
    g.bench_function("ser-sweep", |b| {
        b.iter(|| experiments::ser_sweep(ExperimentConfig::quick(), &[Benchmark::Gzip]))
    });
    g.bench_function("roec-campaign", |b| {
        b.iter(|| experiments::roec(ExperimentConfig::quick(), 6))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table2_table3,
    bench_fig4_architectures,
    bench_fig5_sweep_point,
    bench_fig6_cb_sizes,
    bench_comparators_and_extensions,
    bench_reliability
);
criterion_main!(benches);
