//! Micro-benches of the building blocks: detection primitives, cache
//! model, workload generation and the pipeline engine.

use std::cell::Cell;

use unsync_bench::microbench::Bench;
use unsync_fault::{crc16_word, Fingerprint, ParityWord, SecdedCodeword};
use unsync_mem::{AccessKind, Cache, CacheConfig, HierarchyConfig, MemSystem, WritePolicy};
use unsync_sim::{CoreConfig, NullHooks, OooEngine};
use unsync_workloads::{Benchmark, WorkloadGen};

fn bench_detection_primitives() {
    let mut g = Bench::group("primitives");
    let x = Cell::new(0u64);
    g.bench("parity/store+load", || {
        x.set(x.get().wrapping_add(0x9e37));
        ParityWord::store(x.get()).load()
    });
    x.set(0);
    g.bench("secded/encode+decode", || {
        x.set(x.get().wrapping_add(0x9e37));
        SecdedCodeword::encode(x.get()).decode()
    });
    let bit = Cell::new(0u32);
    g.bench("secded/correct-one-flip", || {
        bit.set((bit.get() + 1) % 72);
        let mut cw = SecdedCodeword::encode(0xdead_beef);
        cw.flip_bit(bit.get());
        cw.decode()
    });
    let crc = Cell::new(0xffffu16);
    x.set(0);
    g.bench("crc16/word", || {
        x.set(x.get().wrapping_add(1));
        crc.set(crc16_word(crc.get(), x.get()));
        crc.get()
    });
    g.bench("fingerprint/update", || {
        let mut fp = Fingerprint::new();
        for i in 1..=64u64 {
            fp.update(i * 4, i);
        }
        fp.peek()
    });
}

fn bench_cache() {
    let mut g = Bench::group("cache");
    let mut hot = Cache::new(CacheConfig::l1_table1(), WritePolicy::WriteThrough);
    hot.access(0x1000, AccessKind::Read);
    let hot = Cell::new(Some(hot));
    g.bench("l1/hit", || {
        let mut cache = hot.take().expect("cache present");
        let t = cache.access(0x1000, AccessKind::Read);
        hot.set(Some(cache));
        t
    });
    let cold = Cell::new(Some(Cache::new(
        CacheConfig::l1_table1(),
        WritePolicy::WriteThrough,
    )));
    let addr = Cell::new(0u64);
    g.bench("l1/streaming-misses", || {
        let mut cache = cold.take().expect("cache present");
        addr.set(addr.get() + 64);
        let t = cache.access(addr.get(), AccessKind::Read);
        cold.set(Some(cache));
        t
    });
    let mem = Cell::new(Some(MemSystem::new(
        HierarchyConfig::table1(),
        1,
        WritePolicy::WriteThrough,
    )));
    let cycle = Cell::new(0u64);
    addr.set(0x1000);
    g.bench("hierarchy/load", || {
        let mut m = mem.take().expect("mem present");
        cycle.set(cycle.get() + 4);
        addr.set(addr.get().wrapping_add(8) & 0xf_ffff);
        let t = m.load(0, addr.get(), cycle.get());
        mem.set(Some(m));
        t
    });
}

fn bench_workload_and_engine() {
    let mut g = Bench::group("engine");
    for bench in [Benchmark::Bzip2, Benchmark::Sha] {
        g.bench(&format!("gen/{}", bench.name()), || {
            WorkloadGen::new(bench, 10_000, 1).collect_trace()
        });
        let trace = WorkloadGen::new(bench, 10_000, 1).collect_trace();
        g.bench(&format!("feed-10k/{}", bench.name()), || {
            let mut mem = MemSystem::new(HierarchyConfig::table1(), 1, WritePolicy::WriteThrough);
            let mut engine = OooEngine::new(CoreConfig::table1(), 0);
            let mut hooks = NullHooks;
            for inst in trace.insts() {
                engine.feed(inst, &mut mem, &mut hooks);
            }
            engine.stats().last_commit_cycle
        });
    }
}

fn main() {
    bench_detection_primitives();
    bench_cache();
    bench_workload_and_engine();
}
