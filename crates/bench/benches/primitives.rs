//! Criterion benches of the building blocks: detection primitives,
//! cache model, workload generation and the pipeline engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use unsync_fault::{crc16_word, Fingerprint, ParityWord, SecdedCodeword};
use unsync_mem::{AccessKind, Cache, CacheConfig, HierarchyConfig, MemSystem, WritePolicy};
use unsync_sim::{CoreConfig, NullHooks, OooEngine};
use unsync_workloads::{Benchmark, WorkloadGen};

fn bench_detection_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");
    g.throughput(Throughput::Elements(1));
    g.bench_function("parity/store+load", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9e37);
            ParityWord::store(x).load()
        })
    });
    g.bench_function("secded/encode+decode", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9e37);
            SecdedCodeword::encode(x).decode()
        })
    });
    g.bench_function("secded/correct-one-flip", |b| {
        let mut bit = 0u32;
        b.iter(|| {
            bit = (bit + 1) % 72;
            let mut cw = SecdedCodeword::encode(0xdead_beef);
            cw.flip_bit(bit);
            cw.decode()
        })
    });
    g.bench_function("crc16/word", |b| {
        let mut crc = 0xffffu16;
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            crc = crc16_word(crc, x);
            crc
        })
    });
    g.bench_function("fingerprint/update", |b| {
        let mut fp = Fingerprint::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            fp.update(i * 4, i);
            fp.peek()
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));
    g.bench_function("l1/hit", |b| {
        let mut cache = Cache::new(CacheConfig::l1_table1(), WritePolicy::WriteThrough);
        cache.access(0x1000, AccessKind::Read);
        b.iter(|| cache.access(0x1000, AccessKind::Read))
    });
    g.bench_function("l1/streaming-misses", |b| {
        let mut cache = Cache::new(CacheConfig::l1_table1(), WritePolicy::WriteThrough);
        let mut addr = 0u64;
        b.iter(|| {
            addr += 64;
            cache.access(addr, AccessKind::Read)
        })
    });
    g.bench_function("hierarchy/load", |b| {
        let mut mem = MemSystem::new(HierarchyConfig::table1(), 1, WritePolicy::WriteThrough);
        let mut cycle = 0u64;
        let mut addr = 0x1000u64;
        b.iter(|| {
            cycle += 4;
            addr = addr.wrapping_add(8) & 0xf_ffff;
            mem.load(0, addr, cycle)
        })
    });
    g.finish();
}

fn bench_workload_and_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    for bench in [Benchmark::Bzip2, Benchmark::Sha] {
        g.throughput(Throughput::Elements(10_000));
        g.bench_with_input(BenchmarkId::new("gen", bench.name()), &bench, |b, &bench| {
            b.iter(|| WorkloadGen::new(bench, 10_000, 1).collect_trace())
        });
        g.bench_with_input(BenchmarkId::new("feed-10k", bench.name()), &bench, |b, &bench| {
            let trace = WorkloadGen::new(bench, 10_000, 1).collect_trace();
            b.iter(|| {
                let mut mem =
                    MemSystem::new(HierarchyConfig::table1(), 1, WritePolicy::WriteThrough);
                let mut engine = OooEngine::new(CoreConfig::table1(), 0);
                let mut hooks = NullHooks;
                for inst in trace.insts() {
                    engine.feed(inst, &mut mem, &mut hooks);
                }
                engine.stats().last_commit_cycle
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_detection_primitives, bench_cache, bench_workload_and_engine);
criterion_main!(benches);
