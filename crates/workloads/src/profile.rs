//! Per-benchmark statistical profiles.
//!
//! Each named SPEC2000 / MiBench program is characterized by the trace
//! statistics the paper's evaluation depends on. Fractions that the paper
//! states explicitly (the serializing-instruction fractions of Fig. 4:
//! bzip2 2 %, ammp 1.7 %, galgel 1 %) are used verbatim; the remaining
//! parameters follow the well-known character of each program (mcf is a
//! pointer-chasing cache thrasher, galgel a high-ILP dense-FP kernel,
//! MiBench kernels are small-footprint integer codes, …).

use serde::{Deserialize, Serialize};

/// Which suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SPEC CPU2000.
    Spec2000,
    /// MiBench embedded suite.
    MiBench,
}

/// Statistical profile of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BenchmarkProfile {
    /// Program name (paper spelling).
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// Fraction of integer multiplies.
    pub frac_int_mul: f64,
    /// Fraction of integer divides.
    pub frac_int_div: f64,
    /// Fraction of FP add/sub.
    pub frac_fp_alu: f64,
    /// Fraction of FP multiplies.
    pub frac_fp_mul: f64,
    /// Fraction of FP divides.
    pub frac_fp_div: f64,
    /// Fraction of loads.
    pub frac_load: f64,
    /// Fraction of stores.
    pub frac_store: f64,
    /// Fraction of branches.
    pub frac_branch: f64,
    /// Fraction of serializing instructions (traps + memory barriers) —
    /// the Fig. 4 statistic.
    pub frac_serializing: f64,
    /// Probability that an operand comes from a recently produced result
    /// (dependency-chain density; high values serialize execution and
    /// keep the ROB full).
    pub dep_locality: f64,
    /// How far back (in instructions) chained operands reach.
    pub chain_window: u32,
    /// Data working set in 64-byte lines.
    pub ws_lines: u64,
    /// Probability a memory access continues the current sequential
    /// stream (vs. jumping to a random line of the working set).
    pub spatial_locality: f64,
    /// Branch misprediction rate.
    pub mispredict_rate: f64,
    /// Probability a load/store *address* depends on a recently produced
    /// value (pointer chasing). High values destroy memory-level
    /// parallelism — mcf's defining trait.
    pub pointer_chase: f64,
    /// Probability a non-sequential access lands in the cache-resident
    /// *hot region* (the first 128 lines of the working set) instead of a
    /// uniformly random line. Models temporal locality: real programs
    /// re-touch a small hot set far more often than an LRU-hostile
    /// uniform sweep would.
    pub hot_fraction: f64,
}

impl BenchmarkProfile {
    /// Fraction of plain integer-ALU instructions (the remainder of the
    /// mix).
    pub fn frac_int_alu(&self) -> f64 {
        1.0 - (self.frac_int_mul
            + self.frac_int_div
            + self.frac_fp_alu
            + self.frac_fp_mul
            + self.frac_fp_div
            + self.frac_load
            + self.frac_store
            + self.frac_branch
            + self.frac_serializing)
    }

    /// Validates that the mix is a proper distribution.
    pub fn validate(&self) -> Result<(), String> {
        let rem = self.frac_int_alu();
        if rem < 0.0 {
            return Err(format!(
                "{}: mix sums past 1.0 (remainder {rem})",
                self.name
            ));
        }
        for (label, v) in [
            ("int_mul", self.frac_int_mul),
            ("int_div", self.frac_int_div),
            ("fp_alu", self.frac_fp_alu),
            ("fp_mul", self.frac_fp_mul),
            ("fp_div", self.frac_fp_div),
            ("load", self.frac_load),
            ("store", self.frac_store),
            ("branch", self.frac_branch),
            ("serializing", self.frac_serializing),
            ("dep_locality", self.dep_locality),
            ("spatial", self.spatial_locality),
            ("mispredict", self.mispredict_rate),
            ("pointer_chase", self.pointer_chase),
            ("hot_fraction", self.hot_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{}: {label} = {v} out of [0,1]", self.name));
            }
        }
        if self.ws_lines == 0 || self.chain_window == 0 {
            return Err(format!("{}: zero working set or chain window", self.name));
        }
        Ok(())
    }
}

macro_rules! benchmarks {
    ($( $variant:ident => $profile:expr ),+ $(,)?) => {
        /// A named benchmark from the paper's evaluation.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
        pub enum Benchmark {
            $(
                #[doc = concat!("The `", stringify!($variant), "` workload.")]
                $variant,
            )+
        }

        impl Benchmark {
            /// Every modelled benchmark, SPEC2000 first.
            pub fn all() -> &'static [Benchmark] {
                &[$(Benchmark::$variant),+]
            }

            /// The benchmark's statistical profile.
            pub fn profile(self) -> BenchmarkProfile {
                match self {
                    $(Benchmark::$variant => $profile),+
                }
            }
        }
    };
}

/// Shorthand constructor keeping the table below readable.
#[allow(clippy::too_many_arguments)]
const fn p(
    name: &'static str,
    suite: Suite,
    fp: (f64, f64, f64),    // fp_alu, fp_mul, fp_div
    int_muldiv: (f64, f64), // int_mul, int_div
    mem: (f64, f64),        // load, store
    branch: (f64, f64),     // fraction, mispredict rate
    serializing: f64,
    deps: (f64, u32), // locality, window
    ws: (u64, f64),   // lines, spatial locality
    pointer_chase: f64,
    hot_fraction: f64,
) -> BenchmarkProfile {
    BenchmarkProfile {
        name,
        suite,
        frac_int_mul: int_muldiv.0,
        frac_int_div: int_muldiv.1,
        frac_fp_alu: fp.0,
        frac_fp_mul: fp.1,
        frac_fp_div: fp.2,
        frac_load: mem.0,
        frac_store: mem.1,
        frac_branch: branch.0,
        frac_serializing: serializing,
        dep_locality: deps.0,
        chain_window: deps.1,
        ws_lines: ws.0,
        spatial_locality: ws.1,
        mispredict_rate: branch.1,
        pointer_chase,
        hot_fraction,
    }
}

use Suite::{MiBench, Spec2000};

benchmarks! {
    // ── SPEC2000 ────────────────────────────────────────────────────────
    // bzip2: integer compressor; the paper's highest serializing fraction
    // (2 % of dynamic instructions).
    Bzip2 => p("bzip2", Spec2000, (0.0, 0.0, 0.0), (0.01, 0.001),
               (0.24, 0.12), (0.14, 0.07), 0.020, (0.55, 16), (4096, 0.70), 0.10, 0.70),
    // gzip: lighter compressor, small working set.
    Gzip => p("gzip", Spec2000, (0.0, 0.0, 0.0), (0.008, 0.001),
              (0.22, 0.12), (0.15, 0.06), 0.003, (0.55, 16), (2048, 0.72), 0.10, 0.72),
    // mcf: pointer-chasing network-simplex code; thrashes the L2.
    Mcf => p("mcf", Spec2000, (0.0, 0.0, 0.0), (0.004, 0.001),
             (0.35, 0.09), (0.10, 0.08), 0.002, (0.60, 8), (131072, 0.25), 0.45, 0.35),
    // ammp: FP molecular dynamics; 1.7 % serializing (Fig. 4), dense
    // dependency chains that saturate the ROB (Fig. 5).
    Ammp => p("ammp", Spec2000, (0.20, 0.12, 0.005), (0.003, 0.0),
              (0.27, 0.09), (0.06, 0.02), 0.017, (0.60, 12), (2048, 0.75), 0.08, 0.85),
    // galgel: dense-FP fluid dynamics kernel; 1 % serializing, the
    // paper's worst ROB-occupancy victim — high-ILP, cache-resident.
    Galgel => p("galgel", Spec2000, (0.25, 0.15, 0.005), (0.002, 0.0),
                (0.24, 0.08), (0.04, 0.01), 0.010, (0.50, 16), (1024, 0.85), 0.05, 0.90),
    // equake: FP earthquake simulation, large sparse working set.
    Equake => p("equake", Spec2000, (0.18, 0.10, 0.01), (0.003, 0.0),
                (0.30, 0.08), (0.07, 0.03), 0.004, (0.65, 12), (65536, 0.60), 0.15, 0.50),
    // art: FP neural-net image recognition; streaming, memory bound.
    Art => p("art", Spec2000, (0.16, 0.10, 0.005), (0.002, 0.0),
             (0.32, 0.06), (0.08, 0.03), 0.002, (0.60, 12), (32768, 0.50), 0.12, 0.45),
    // vpr: FPGA place-and-route, mixed int/fp.
    Vpr => p("vpr", Spec2000, (0.06, 0.04, 0.005), (0.01, 0.002),
             (0.26, 0.10), (0.12, 0.07), 0.004, (0.60, 12), (8192, 0.55), 0.20, 0.60),
    // parser: English parser; branchy integer code.
    Parser => p("parser", Spec2000, (0.0, 0.0, 0.0), (0.006, 0.001),
                (0.25, 0.10), (0.18, 0.09), 0.005, (0.55, 16), (4096, 0.60), 0.25, 0.65),
    // twolf: placement/routing, pointer-heavy integer code.
    Twolf => p("twolf", Spec2000, (0.01, 0.005, 0.0), (0.012, 0.002),
               (0.27, 0.09), (0.13, 0.07), 0.003, (0.58, 12), (8192, 0.50), 0.30, 0.55),
    // gcc: compiler; branchy, moderate footprint, some traps (syscalls).
    Gcc => p("gcc", Spec2000, (0.0, 0.0, 0.0), (0.008, 0.001),
             (0.26, 0.11), (0.16, 0.08), 0.006, (0.55, 16), (16384, 0.55), 0.25, 0.65),
    // crafty: chess engine; bit-twiddling integer ALU with high ILP.
    Crafty => p("crafty", Spec2000, (0.0, 0.0, 0.0), (0.015, 0.001),
                (0.20, 0.07), (0.12, 0.06), 0.002, (0.45, 16), (2048, 0.70), 0.10, 0.85),
    // gap: group theory; allocation-heavy integer code.
    Gap => p("gap", Spec2000, (0.0, 0.0, 0.0), (0.01, 0.002),
             (0.27, 0.12), (0.12, 0.06), 0.004, (0.58, 14), (16384, 0.50), 0.25, 0.60),
    // vortex: object database; pointer-rich, store-heavy.
    Vortex => p("vortex", Spec2000, (0.0, 0.0, 0.0), (0.005, 0.001),
                (0.28, 0.14), (0.14, 0.06), 0.005, (0.55, 14), (16384, 0.55), 0.30, 0.60),
    // perlbmk: interpreter; very branchy, dispatch-table driven.
    Perlbmk => p("perlbmk", Spec2000, (0.0, 0.0, 0.0), (0.006, 0.001),
                 (0.26, 0.11), (0.19, 0.09), 0.006, (0.55, 14), (8192, 0.55), 0.22, 0.65),
    // eon: C++ ray tracer; fp-flavoured with virtual dispatch.
    Eon => p("eon", Spec2000, (0.10, 0.07, 0.01), (0.006, 0.001),
             (0.24, 0.10), (0.11, 0.05), 0.003, (0.60, 12), (4096, 0.65), 0.15, 0.75),
    // mesa: software GL; streaming fp over vertex arrays.
    Mesa => p("mesa", Spec2000, (0.16, 0.10, 0.01), (0.004, 0.0),
              (0.26, 0.10), (0.08, 0.03), 0.002, (0.60, 12), (8192, 0.75), 0.08, 0.75),
    // applu: fp PDE solver; dense loops, large working set.
    Applu => p("applu", Spec2000, (0.22, 0.13, 0.01), (0.002, 0.0),
               (0.27, 0.09), (0.04, 0.01), 0.002, (0.55, 14), (32768, 0.75), 0.05, 0.55),
    // mgrid: multigrid; extremely regular fp streaming.
    Mgrid => p("mgrid", Spec2000, (0.24, 0.14, 0.005), (0.002, 0.0),
               (0.30, 0.07), (0.03, 0.01), 0.001, (0.50, 16), (32768, 0.85), 0.04, 0.60),
    // swim: shallow-water model; bandwidth bound fp streaming.
    Swim => p("swim", Spec2000, (0.22, 0.12, 0.005), (0.002, 0.0),
              (0.32, 0.09), (0.03, 0.01), 0.001, (0.50, 16), (65536, 0.85), 0.04, 0.40),
    // wupwise: quantum chromodynamics; fp with dense linear algebra.
    Wupwise => p("wupwise", Spec2000, (0.23, 0.15, 0.005), (0.002, 0.0),
                 (0.26, 0.08), (0.04, 0.01), 0.001, (0.50, 16), (16384, 0.80), 0.05, 0.65),
    // apsi: meteorology; fp with moderate footprint.
    Apsi => p("apsi", Spec2000, (0.20, 0.12, 0.01), (0.003, 0.0),
              (0.26, 0.09), (0.06, 0.02), 0.003, (0.58, 12), (16384, 0.70), 0.08, 0.65),
    // ── MiBench ─────────────────────────────────────────────────────────
    // qsort: recursive sort; store-heavy (swap traffic).
    Qsort => p("qsort", MiBench, (0.0, 0.0, 0.0), (0.004, 0.001),
               (0.25, 0.15), (0.16, 0.08), 0.001, (0.55, 12), (1024, 0.55), 0.15, 0.75),
    // susan: image smoothing; streaming loads.
    Susan => p("susan", MiBench, (0.02, 0.02, 0.0), (0.02, 0.002),
               (0.30, 0.08), (0.10, 0.04), 0.001, (0.60, 12), (2048, 0.80), 0.05, 0.80),
    // dijkstra: graph shortest path; loads + branches.
    Dijkstra => p("dijkstra", MiBench, (0.0, 0.0, 0.0), (0.005, 0.001),
                  (0.30, 0.08), (0.12, 0.06), 0.001, (0.58, 12), (1024, 0.45), 0.30, 0.60),
    // sha: hash kernel; ALU/rotate dominated, tiny footprint.
    Sha => p("sha", MiBench, (0.0, 0.0, 0.0), (0.003, 0.0),
             (0.15, 0.05), (0.06, 0.02), 0.0005, (0.80, 8), (256, 0.90), 0.05, 0.95),
    // stringsearch: branchy byte scanning.
    Stringsearch => p("stringsearch", MiBench, (0.0, 0.0, 0.0), (0.002, 0.0),
                      (0.28, 0.04), (0.20, 0.10), 0.0005, (0.50, 16), (512, 0.75), 0.10, 0.85),
    // bitcount: pure ALU loop, almost no memory.
    Bitcount => p("bitcount", MiBench, (0.0, 0.0, 0.0), (0.01, 0.001),
                  (0.08, 0.03), (0.12, 0.03), 0.0005, (0.70, 8), (128, 0.90), 0.02, 0.95),
    // basicmath: scalar math with divides.
    Basicmath => p("basicmath", MiBench, (0.10, 0.06, 0.03), (0.02, 0.015),
                   (0.18, 0.07), (0.08, 0.04), 0.001, (0.70, 10), (256, 0.80), 0.05, 0.90),
    // fft: FP butterfly kernel.
    Fft => p("fft", MiBench, (0.20, 0.14, 0.01), (0.004, 0.0),
             (0.24, 0.10), (0.06, 0.02), 0.001, (0.75, 8), (1024, 0.70), 0.08, 0.80),
    // crc32: table-driven checksum; load + xor stream.
    Crc32 => p("crc32", MiBench, (0.0, 0.0, 0.0), (0.0, 0.0),
               (0.30, 0.04), (0.10, 0.02), 0.0005, (0.65, 8), (256, 0.85), 0.10, 0.90),
    // rijndael: AES; table loads and stores.
    Rijndael => p("rijndael", MiBench, (0.0, 0.0, 0.0), (0.006, 0.0),
                  (0.28, 0.14), (0.07, 0.03), 0.001, (0.68, 10), (512, 0.80), 0.08, 0.85),
    // blowfish: Feistel cipher; xor/rotate with S-box loads.
    Blowfish => p("blowfish", MiBench, (0.0, 0.0, 0.0), (0.004, 0.0),
                  (0.26, 0.10), (0.06, 0.02), 0.0008, (0.70, 10), (256, 0.85), 0.08, 0.90),
    // gsm: speech codec; fixed-point mul-heavy.
    Gsm => p("gsm", MiBench, (0.0, 0.0, 0.0), (0.08, 0.004),
             (0.22, 0.08), (0.09, 0.04), 0.001, (0.65, 10), (512, 0.80), 0.08, 0.85),
    // adpcm: tiny codec; almost pure ALU streaming.
    Adpcm => p("adpcm", MiBench, (0.0, 0.0, 0.0), (0.004, 0.0),
               (0.18, 0.06), (0.10, 0.03), 0.0005, (0.75, 8), (128, 0.92), 0.05, 0.95),
    // patricia: trie lookups; pointer chasing over a modest trie.
    Patricia => p("patricia", MiBench, (0.0, 0.0, 0.0), (0.003, 0.0),
                  (0.31, 0.07), (0.13, 0.07), 0.001, (0.55, 12), (2048, 0.40), 0.40, 0.60),
    // jpeg: DCT codec; int mul blocks + streaming.
    Jpeg => p("jpeg", MiBench, (0.0, 0.0, 0.0), (0.06, 0.002),
              (0.26, 0.10), (0.08, 0.04), 0.001, (0.62, 12), (2048, 0.80), 0.08, 0.80),
    // lame: mp3 encoder; fp transform heavy.
    Lame => p("lame", MiBench, (0.18, 0.12, 0.01), (0.01, 0.001),
              (0.24, 0.09), (0.07, 0.03), 0.002, (0.62, 12), (4096, 0.75), 0.08, 0.75),
}

impl Benchmark {
    /// All SPEC2000 benchmarks.
    pub fn spec2000() -> Vec<Benchmark> {
        Benchmark::all()
            .iter()
            .copied()
            .filter(|b| b.profile().suite == Spec2000)
            .collect()
    }

    /// All MiBench benchmarks.
    pub fn mibench() -> Vec<Benchmark> {
        Benchmark::all()
            .iter()
            .copied()
            .filter(|b| b.profile().suite == MiBench)
            .collect()
    }

    /// The benchmark's display name (paper spelling).
    pub fn name(self) -> &'static str {
        self.profile().name
    }

    /// The three benchmarks Fig. 4 singles out for >10 % Reunion
    /// serialization overhead.
    pub fn serializing_heavy() -> [Benchmark; 3] {
        [Benchmark::Bzip2, Benchmark::Ammp, Benchmark::Galgel]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_profile_validates() {
        for b in Benchmark::all() {
            b.profile().validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn full_roster_is_present() {
        assert_eq!(Benchmark::all().len(), 38);
        assert_eq!(Benchmark::spec2000().len(), 22);
        assert_eq!(Benchmark::mibench().len(), 16);
    }

    #[test]
    fn paper_serializing_fractions() {
        assert!((Benchmark::Bzip2.profile().frac_serializing - 0.020).abs() < 1e-12);
        assert!((Benchmark::Ammp.profile().frac_serializing - 0.017).abs() < 1e-12);
        assert!((Benchmark::Galgel.profile().frac_serializing - 0.010).abs() < 1e-12);
    }

    #[test]
    fn serializing_heavy_ordering_matches_fig4() {
        // bzip2 > ammp > galgel in serializing fraction, all above every
        // other benchmark.
        let heavy = Benchmark::serializing_heavy();
        let fr = |b: Benchmark| b.profile().frac_serializing;
        assert!(fr(heavy[0]) > fr(heavy[1]));
        assert!(fr(heavy[1]) > fr(heavy[2]));
        for b in Benchmark::all() {
            if !heavy.contains(b) {
                assert!(fr(*b) < fr(heavy[2]), "{}", b.name());
            }
        }
    }

    #[test]
    fn int_alu_remainder_is_substantial() {
        for b in Benchmark::all() {
            let rem = b.profile().frac_int_alu();
            assert!(rem > 0.1, "{}: int-ALU remainder {rem}", b.name());
        }
    }

    #[test]
    fn mcf_has_the_biggest_working_set() {
        let mcf = Benchmark::Mcf.profile().ws_lines;
        for b in Benchmark::all() {
            if *b != Benchmark::Mcf {
                assert!(b.profile().ws_lines <= mcf);
            }
        }
        // Bigger than the 4 MB L2 (65536 lines).
        assert!(mcf > 65536);
    }

    #[test]
    fn galgel_is_a_high_ilp_cache_resident_kernel() {
        // The Fig. 5 precondition: galgel sustains high IPC (wide window,
        // cache-resident working set), which is what lets CHECK-stage
        // back-pressure bite.
        let g = Benchmark::Galgel.profile();
        assert!(g.chain_window >= 12, "wide dependence window");
        assert!(g.ws_lines <= 1024, "cache-resident working set");
        assert!(g.mispredict_rate <= 0.02, "near-perfect branches");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Benchmark::all().iter().map(|b| b.name()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
    }
}
