//! Real-ISA MiBench-style kernels: the measured workload backend.
//!
//! Where [`crate::gen::WorkloadGen`] *samples* instruction statistics
//! from a calibrated profile, this module *computes* them: each
//! [`Kernel`] is a real algorithm (quicksort, bitwise CRC-32,
//! Dijkstra's shortest paths, Boyer–Moore–Horspool string search — the
//! MiBench names the paper evaluates) run over seed-derived input
//! data. As the algorithm executes, every idealized machine operation
//! is emitted as an [`Inst`] — loads and stores at the real addresses
//! the algorithm touches, branches with the real taken/not-taken
//! outcome of each comparison, mispredict flags from a 2-bit
//! saturating per-site predictor observing those outcomes. Each
//! emitted instruction is immediately executed through
//! [`ArchState::execute`] against an [`ArchMemory`], so the trace is
//! valid by construction and the final memory image is the
//! deterministic product of the kernel itself ([`unsync_isa::golden_run`]
//! over the emitted trace reproduces it exactly).
//!
//! Consequently the serializing fraction, instruction mix, store
//! intensity and branch mispredict rate reported for a kernel trace
//! (see `KERNEL_stats.json`) are **measurements of executed code**,
//! not profile assumptions.
//!
//! A kernel trace is truncated to exactly the requested length: the
//! kernel re-runs on fresh seed-derived inputs (new "invocations" of
//! the program) until the instruction budget is spent, like sampling a
//! fixed simulation window out of a longer execution. Each invocation
//! opens with a `Trap` (the read-input syscall) and closes with a
//! `MemBarrier` (flushing output), which is where the measured
//! serializing fraction comes from.
//!
//! Adding a new kernel means: add a variant to [`Kernel`], write one
//! `fn my_kernel_instance(&mut Emitter, &mut SplitMixStream, base)`
//! that interleaves the shadow computation with `Emitter` calls, and
//! dispatch to it from [`KernelSource::build_at`]. Everything
//! downstream — policies, goldens, spans, dashboards — consumes the
//! resulting [`TraceProgram`] unchanged.

use std::collections::BTreeMap;

use unsync_isa::{ArchMemory, ArchState, BranchInfo, Inst, MemInfo, OpClass, Reg, TraceProgram};

use crate::rng::SplitMixStream;
use crate::source::{WorkloadSource, DEFAULT_DATA_BASE};

/// The four MiBench kernels implemented as real-ISA programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Quicksort (Lomuto partition, explicit stack) over a word array.
    Qsort,
    /// Bitwise (table-less) CRC-32 over a byte buffer.
    Crc32,
    /// Dijkstra single-source shortest paths over a dense matrix.
    Dijkstra,
    /// Boyer–Moore–Horspool search of a pattern in a text buffer.
    Stringsearch,
}

impl Kernel {
    /// All kernels, in a fixed order.
    pub fn all() -> &'static [Kernel] {
        &[
            Kernel::Qsort,
            Kernel::Crc32,
            Kernel::Dijkstra,
            Kernel::Stringsearch,
        ]
    }

    /// Bare kernel name (`"qsort"`, …).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Qsort => "qsort",
            Kernel::Crc32 => "crc32",
            Kernel::Dijkstra => "dijkstra",
            Kernel::Stringsearch => "stringsearch",
        }
    }

    /// The `kernel:`-prefixed workload-spec name, distinguishing the
    /// executed kernel from the same-named synthetic profile.
    pub fn spec_name(self) -> &'static str {
        match self {
            Kernel::Qsort => "kernel:qsort",
            Kernel::Crc32 => "kernel:crc32",
            Kernel::Dijkstra => "kernel:dijkstra",
            Kernel::Stringsearch => "kernel:stringsearch",
        }
    }

    /// Looks a kernel up by bare name.
    pub fn from_name(name: &str) -> Option<Kernel> {
        Kernel::all().iter().copied().find(|k| k.name() == name)
    }

    /// Binds the kernel to a trace length and seed.
    pub fn source(self, length: u64, seed: u64) -> KernelSource {
        KernelSource::new(self, length, seed)
    }
}

/// The kernel backend of the [`WorkloadSource`] seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSource {
    /// Which kernel to run.
    pub kernel: Kernel,
    /// Exact trace length in instructions.
    pub length: u64,
    /// Seed deriving the kernel's input data.
    pub seed: u64,
}

impl KernelSource {
    /// A source running `kernel` for exactly `length` instructions.
    pub fn new(kernel: Kernel, length: u64, seed: u64) -> Self {
        assert!(length > 0, "kernel traces must have at least 1 instruction");
        KernelSource {
            kernel,
            length,
            seed,
        }
    }

    /// Builds the trace *and* the final memory image the kernel's
    /// execution leaves behind (identical to
    /// [`unsync_isa::golden_run`] over the returned trace).
    pub fn build_at(&self, data_base: u64) -> (TraceProgram, ArchMemory) {
        let base = data_base & !63;
        let code_base = 0x0040_0000 + (self.kernel as u64) * 0x0002_0000;
        let mut e = Emitter::new(self.length as usize, code_base);
        let mut invocation = 0u64;
        while !e.full() {
            let mut rng = SplitMixStream::new(
                self.seed
                    ^ invocation.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    ^ (self.kernel as u64).wrapping_mul(0x6c62_272e_07bb_0142),
            );
            match self.kernel {
                Kernel::Qsort => qsort_instance(&mut e, &mut rng, base, self.qsort_n()),
                Kernel::Crc32 => crc32_instance(&mut e, &mut rng, base, self.crc32_bytes()),
                Kernel::Dijkstra => dijkstra_instance(&mut e, &mut rng, base, self.dijkstra_n()),
                Kernel::Stringsearch => {
                    stringsearch_instance(&mut e, &mut rng, base, self.text_len())
                }
            }
            invocation += 1;
        }
        (TraceProgram::new(e.insts), e.mem)
    }

    /// Builds trace + final memory at the default data base.
    pub fn build(&self) -> (TraceProgram, ArchMemory) {
        self.build_at(DEFAULT_DATA_BASE)
    }

    /// Problem sizes scale with the instruction budget so one
    /// invocation fills a healthy fraction of the trace without
    /// overflowing tiny budgets.
    fn qsort_n(&self) -> usize {
        (self.length / 40).clamp(16, 1024) as usize
    }

    fn crc32_bytes(&self) -> usize {
        (self.length / 42).clamp(8, 4096) as usize
    }

    fn dijkstra_n(&self) -> usize {
        isqrt(self.length / 9).clamp(6, 64) as usize
    }

    fn text_len(&self) -> usize {
        (self.length / 5).clamp(48, 8192) as usize
    }
}

impl WorkloadSource for KernelSource {
    fn name(&self) -> &'static str {
        self.kernel.spec_name()
    }

    fn length(&self) -> u64 {
        self.length
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn trace_at(&self, data_base: u64) -> TraceProgram {
        self.build_at(data_base).0
    }
}

/// Integer square root (monotone bisection; deterministic everywhere).
fn isqrt(x: u64) -> u64 {
    if x < 2 {
        return x;
    }
    let mut lo = 1u64;
    let mut hi = x.min(u32::MAX as u64);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if mid.checked_mul(mid).is_some_and(|sq| sq <= x) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

// Fixed register roles shared by the kernels: scratch values v0–v4,
// a temp, an accumulator, and the address/index/constant registers a
// compiler would pin across a hot loop. r31 is the zero register.
fn v0() -> Reg {
    Reg::int(1)
}
fn v1() -> Reg {
    Reg::int(2)
}
fn v2() -> Reg {
    Reg::int(3)
}
fn v3() -> Reg {
    Reg::int(4)
}
fn v4() -> Reg {
    Reg::int(5)
}
fn tmp() -> Reg {
    Reg::int(6)
}
fn acc() -> Reg {
    Reg::int(7)
}
fn rbase() -> Reg {
    Reg::int(8)
}
fn ri() -> Reg {
    Reg::int(9)
}
fn rj() -> Reg {
    Reg::int(10)
}
fn rk() -> Reg {
    Reg::int(11)
}
fn rlen() -> Reg {
    Reg::int(12)
}
fn rone() -> Reg {
    Reg::int(13)
}
fn rpoly() -> Reg {
    Reg::int(14)
}

// Static branch-site ids (predictor keys), unique per kernel loop.
const S_QFILL: u32 = 0;
const S_QCMP: u32 = 1;
const S_QPART: u32 = 2;
const S_CFILL: u32 = 10;
const S_CLSB: u32 = 13;
const S_CBIT: u32 = 11;
const S_CBYTE: u32 = 12;
const S_DINIT: u32 = 20;
const S_DMIN: u32 = 21;
const S_DSCAN: u32 = 22;
const S_DRELAX: u32 = 23;
const S_DRLOOP: u32 = 24;
const S_SFILL: u32 = 30;
const S_STAB: u32 = 31;
const S_SPAT: u32 = 32;
const S_SCMP: u32 = 33;
const S_SCMPL: u32 = 34;
const S_SSCAN: u32 = 35;

/// Builds the trace while executing it: every emitted [`Inst`] runs
/// through [`ArchState::execute`] immediately, so `pc` follows the
/// architectural next-pc rule (taken branches jump, everything else
/// falls through) and `mem` is the kernel's real output image.
///
/// Once the instruction budget is spent every emit call becomes a
/// no-op, letting the shadow algorithm run to completion cheaply.
struct Emitter {
    insts: Vec<Inst>,
    target: usize,
    state: ArchState,
    mem: ArchMemory,
    pc: u64,
    /// 2-bit saturating counters per static branch site, initialized
    /// weakly-taken — the same shape as a minimal bimodal predictor.
    predictor: BTreeMap<u32, u8>,
}

impl Emitter {
    fn new(target: usize, code_base: u64) -> Self {
        Emitter {
            insts: Vec::with_capacity(target),
            target,
            state: ArchState::new(),
            mem: ArchMemory::new(),
            pc: code_base,
            predictor: BTreeMap::new(),
        }
    }

    fn full(&self) -> bool {
        self.insts.len() >= self.target
    }

    /// Current pc — the address the next emitted instruction gets;
    /// kernels record loop tops with this.
    fn here(&self) -> u64 {
        self.pc
    }

    fn push(&mut self, b: unsync_isa::InstBuilder) {
        if self.full() {
            return;
        }
        let inst = b.seq(self.insts.len() as u64).pc(self.pc).finish();
        self.state.execute(&inst, &mut self.mem);
        self.pc = if let Some(br) = inst.branch {
            if br.taken {
                br.target
            } else {
                inst.pc + 4
            }
        } else {
            inst.pc + 4
        };
        self.insts.push(inst);
    }

    fn alu(&mut self, dest: Reg, a: Reg, b: Reg) {
        self.push(Inst::build(OpClass::IntAlu).dest(dest).src0(a).src1(b));
    }

    fn load(&mut self, dest: Reg, addr: u64) {
        self.push(
            Inst::build(OpClass::Load)
                .dest(dest)
                .src0(rbase())
                .mem(MemInfo::dword(addr)),
        );
    }

    fn store(&mut self, val: Reg, addr: u64) {
        self.push(
            Inst::build(OpClass::Store)
                .src0(val)
                .src1(rbase())
                .mem(MemInfo::dword(addr)),
        );
    }

    fn trap(&mut self) {
        self.push(Inst::build(OpClass::Trap));
    }

    fn barrier(&mut self) {
        self.push(Inst::build(OpClass::MemBarrier));
    }

    fn branch(&mut self, site: u32, taken: bool, target: u64, a: Reg, b: Reg) {
        if self.full() {
            return;
        }
        let ctr = self.predictor.entry(site).or_insert(2);
        let predicted = *ctr >= 2;
        *ctr = if taken {
            (*ctr + 1).min(3)
        } else {
            ctr.saturating_sub(1)
        };
        self.push(
            Inst::build(OpClass::Branch)
                .src0(a)
                .src1(b)
                .branch(BranchInfo {
                    taken,
                    mispredicted: predicted != taken,
                    target,
                }),
        );
    }

    /// Loop bottom: branch back to `top` while `again` holds.
    fn loop_branch(&mut self, site: u32, again: bool, top: u64, a: Reg, b: Reg) {
        self.branch(site, again, top, a, b);
    }

    /// Forward branch over a `skipped`-instruction block ("branch if
    /// condition fails, else fall through into the block"). Taken and
    /// not-taken paths rejoin at the same pc, so loop bodies keep a
    /// static layout across iterations.
    fn skip_branch(&mut self, site: u32, skip: bool, skipped: u64, a: Reg, b: Reg) {
        let target = self.pc + 4 * (skipped + 1);
        self.branch(site, skip, target, a, b);
    }

    /// Forward taken-or-not exit branch (inner-loop early out); the
    /// taken target is a synthetic forward address.
    fn exit_branch(&mut self, site: u32, taken: bool, a: Reg, b: Reg) {
        let target = self.pc + 64;
        self.branch(site, taken, target, a, b);
    }
}

/// Quicksort: fill the array from "input", sort with Lomuto-partition
/// quicksort on an explicit stack, every compare/swap hitting memory.
fn qsort_instance(e: &mut Emitter, rng: &mut SplitMixStream, base: u64, n: usize) {
    e.trap();
    let mut data: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
    let at = |i: usize| base + 8 * i as u64;
    let fill_top = e.here();
    for i in 0..n {
        e.alu(v0(), acc(), v0());
        e.store(v0(), at(i));
        e.loop_branch(S_QFILL, i + 1 < n, fill_top, ri(), rlen());
        if e.full() {
            return;
        }
    }
    let mut stack = vec![(0usize, n - 1)];
    while let Some((lo, hi)) = stack.pop() {
        if e.full() {
            return;
        }
        if lo >= hi {
            continue;
        }
        let pivot = data[hi];
        e.load(v1(), at(hi));
        let mut i = lo;
        let part_top = e.here();
        for j in lo..hi {
            e.load(v2(), at(j));
            let swap = data[j] < pivot;
            // Branch-if-ge over the 4-instruction swap block.
            e.skip_branch(S_QCMP, !swap, 4, v2(), v1());
            if swap {
                e.load(v3(), at(i));
                e.store(v2(), at(i));
                e.store(v3(), at(j));
                e.alu(ri(), ri(), rone());
                data.swap(i, j);
                i += 1;
            }
            e.loop_branch(S_QPART, j + 1 < hi, part_top, rj(), rlen());
            if e.full() {
                return;
            }
        }
        e.load(v3(), at(i));
        e.store(v1(), at(i));
        e.store(v3(), at(hi));
        data.swap(i, hi);
        if i > lo {
            stack.push((lo, i - 1));
        }
        if i + 1 < hi {
            stack.push((i + 1, hi));
        }
    }
    debug_assert!(data.windows(2).all(|w| w[0] <= w[1]), "quicksort bug");
    e.barrier();
}

/// Bitwise CRC-32 (poly 0xEDB88320): per input byte, eight shift
/// rounds whose xor is guarded by the data-dependent low bit — the
/// classic hard-to-predict branch pattern.
fn crc32_instance(e: &mut Emitter, rng: &mut SplitMixStream, base: u64, m: usize) {
    e.trap();
    let data: Vec<u8> = (0..m).map(|_| rng.next_u64() as u8).collect();
    let mut crc: u32 = 0xFFFF_FFFF;
    let fill_top = e.here();
    for i in 0..m {
        e.alu(v0(), acc(), v0());
        e.store(v0(), base + 8 * i as u64);
        e.loop_branch(S_CFILL, i + 1 < m, fill_top, ri(), rlen());
        if e.full() {
            return;
        }
    }
    let byte_top = e.here();
    for (i, &byte) in data.iter().enumerate() {
        e.load(v0(), base + 8 * i as u64);
        e.alu(acc(), acc(), v0());
        crc ^= byte as u32;
        let bit_top = e.here();
        for k in 0..8 {
            let lsb = crc & 1 == 1;
            crc >>= 1;
            e.alu(tmp(), acc(), rone());
            e.skip_branch(S_CLSB, !lsb, 1, tmp(), Reg::ZERO);
            if lsb {
                crc ^= 0xEDB8_8320;
                e.alu(acc(), acc(), rpoly());
            }
            e.alu(acc(), acc(), rone());
            e.loop_branch(S_CBIT, k + 1 < 8, bit_top, rk(), rone());
        }
        e.loop_branch(S_CBYTE, i + 1 < m, byte_top, ri(), rlen());
        if e.full() {
            return;
        }
    }
    e.store(acc(), base + 8 * m as u64);
    e.barrier();
}

/// Dijkstra over a dense `n × n` weight matrix: per round, a linear
/// min-scan over `dist[]`, then a relax pass loading the adjacency
/// row and conditionally storing improved distances.
fn dijkstra_instance(e: &mut Emitter, rng: &mut SplitMixStream, base: u64, n: usize) {
    e.trap();
    let inf = u64::MAX / 4;
    let adj: Vec<u64> = (0..n * n).map(|_| rng.below(100) + 1).collect();
    let dist_base = base + 8 * (n * n) as u64;
    let visited_base = dist_base + 8 * n as u64;
    let mut dist = vec![inf; n];
    dist[0] = 0;
    let mut visited = vec![false; n];
    let init_top = e.here();
    for var in 0..n {
        e.alu(v0(), acc(), rone());
        e.store(v0(), dist_base + 8 * var as u64);
        e.loop_branch(S_DINIT, var + 1 < n, init_top, ri(), rlen());
        if e.full() {
            return;
        }
    }
    for _round in 0..n {
        if e.full() {
            return;
        }
        let mut u = usize::MAX;
        let mut best = inf;
        let scan_top = e.here();
        for var in 0..n {
            e.load(v1(), dist_base + 8 * var as u64);
            let better = !visited[var] && dist[var] < best;
            e.skip_branch(S_DMIN, !better, 1, v1(), v2());
            if better {
                best = dist[var];
                u = var;
                e.alu(v2(), v1(), rone());
            }
            e.loop_branch(S_DSCAN, var + 1 < n, scan_top, ri(), rlen());
        }
        if u == usize::MAX {
            break;
        }
        visited[u] = true;
        e.store(v2(), visited_base + 8 * u as u64);
        let relax_top = e.here();
        for var in 0..n {
            e.load(v3(), base + 8 * (u * n + var) as u64);
            e.load(v4(), dist_base + 8 * var as u64);
            e.alu(tmp(), v2(), v3());
            let cand = dist[u].saturating_add(adj[u * n + var]);
            let improve = !visited[var] && cand < dist[var];
            e.skip_branch(S_DRELAX, !improve, 1, tmp(), v4());
            if improve {
                dist[var] = cand;
                e.store(tmp(), dist_base + 8 * var as u64);
            }
            e.loop_branch(S_DRLOOP, var + 1 < n, relax_top, rj(), rlen());
            if e.full() {
                return;
            }
        }
    }
    e.barrier();
}

/// Boyer–Moore–Horspool search over a 16-letter text with a few
/// planted pattern occurrences: skip-table build, then a scan whose
/// inner compare loop exits on the first (data-dependent) mismatch.
fn stringsearch_instance(e: &mut Emitter, rng: &mut SplitMixStream, base: u64, t_len: usize) {
    const ALPHABET: usize = 16;
    e.trap();
    let p_len = 4 + rng.below(4) as usize;
    let pattern: Vec<u8> = (0..p_len)
        .map(|_| rng.below(ALPHABET as u64) as u8)
        .collect();
    let mut text: Vec<u8> = (0..t_len)
        .map(|_| rng.below(ALPHABET as u64) as u8)
        .collect();
    for _ in 0..(t_len / 64).max(1) {
        if t_len > p_len {
            let plant = rng.below((t_len - p_len) as u64) as usize;
            text[plant..plant + p_len].copy_from_slice(&pattern);
        }
    }
    let skip_base = base + 8 * t_len as u64;
    let pat_base = skip_base + 8 * ALPHABET as u64;
    let fill_top = e.here();
    for i in 0..t_len {
        e.alu(v0(), acc(), v0());
        e.store(v0(), base + 8 * i as u64);
        e.loop_branch(S_SFILL, i + 1 < t_len, fill_top, ri(), rlen());
        if e.full() {
            return;
        }
    }
    let mut skip = [p_len as u64; ALPHABET];
    let tab_top = e.here();
    for c in 0..ALPHABET {
        e.alu(v1(), rlen(), rone());
        e.store(v1(), skip_base + 8 * c as u64);
        e.loop_branch(S_STAB, c + 1 < ALPHABET, tab_top, ri(), rlen());
    }
    let pat_top = e.here();
    for (idx, &c) in pattern[..p_len - 1].iter().enumerate() {
        skip[c as usize] = (p_len - 1 - idx) as u64;
        e.load(v1(), pat_base + 8 * idx as u64);
        e.store(v1(), skip_base + 8 * c as u64);
        e.loop_branch(S_SPAT, idx + 2 < p_len, pat_top, rk(), rlen());
    }
    let mut pos = 0usize;
    let mut found = 0u64;
    let scan_top = e.here();
    while pos + p_len <= t_len {
        if e.full() {
            return;
        }
        let mut k = p_len;
        let cmp_top = e.here();
        let mut matched = true;
        while k > 0 {
            e.load(v2(), base + 8 * (pos + k - 1) as u64);
            e.load(v3(), pat_base + 8 * (k - 1) as u64);
            let eq = text[pos + k - 1] == pattern[k - 1];
            e.exit_branch(S_SCMP, !eq, v2(), v3());
            if !eq {
                matched = false;
                break;
            }
            k -= 1;
            e.loop_branch(S_SCMPL, k > 0, cmp_top, rk(), rone());
        }
        if matched {
            found += 1;
            e.alu(acc(), acc(), rone());
        }
        let last = text[pos + p_len - 1] as usize;
        e.load(v4(), skip_base + 8 * last as u64);
        e.alu(ri(), ri(), v4());
        pos += skip[last] as usize;
        e.loop_branch(S_SSCAN, pos + p_len <= t_len, scan_top, ri(), rlen());
    }
    let _ = found;
    e.store(acc(), pat_base + 8 * p_len as u64);
    e.barrier();
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsync_isa::golden_run;

    #[test]
    fn kernels_hit_exact_length_and_are_deterministic() {
        for &k in Kernel::all() {
            for len in [1u64, 37, 2_000] {
                let src = KernelSource::new(k, len, 5);
                let (a, mem_a) = src.build();
                let (b, mem_b) = src.build();
                assert_eq!(a.len() as u64, len, "{k:?} trace length");
                assert_eq!(a, b, "{k:?} trace must be deterministic");
                assert_eq!(mem_a, mem_b, "{k:?} memory must be deterministic");
            }
        }
    }

    #[test]
    fn emitted_memory_matches_golden_run() {
        for &k in Kernel::all() {
            let (trace, mem) = KernelSource::new(k, 3_000, 11).build();
            let (_, golden) = golden_run(&trace);
            assert_eq!(mem, golden, "{k:?}: emitter executes what it emits");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = KernelSource::new(Kernel::Qsort, 2_000, 1).trace();
        let b = KernelSource::new(Kernel::Qsort, 2_000, 2).trace();
        assert_ne!(a, b);
    }

    #[test]
    fn relocation_moves_only_data_addresses() {
        let a = KernelSource::new(Kernel::Crc32, 2_000, 3).trace_at(0x1000_0000);
        let b = KernelSource::new(Kernel::Crc32, 2_000, 3).trace_at(0x9000_0000);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.insts().iter().zip(b.insts()) {
            assert_eq!(x.op, y.op);
            assert_eq!(x.branch, y.branch);
            match (x.mem, y.mem) {
                (Some(mx), Some(my)) => {
                    assert_eq!(mx.addr - 0x1000_0000, my.addr - 0x9000_0000);
                }
                (mx, my) => assert_eq!(mx, my),
            }
        }
    }

    #[test]
    fn measured_statistics_are_nontrivial() {
        for &k in Kernel::all() {
            let stats = KernelSource::new(k, 10_000, 1).trace().stats();
            assert!(
                stats.serializing_fraction() > 0.0,
                "{k:?} must trap for input"
            );
            assert!(stats.store_fraction() > 0.0, "{k:?} must store");
            assert!(
                stats.fraction(OpClass::Load) > 0.0,
                "{k:?} must load its data"
            );
            let mispredict = stats.mispredict_rate();
            assert!(
                mispredict > 0.0 && mispredict < 0.5,
                "{k:?} mispredict rate {mispredict} out of range"
            );
            assert!(stats.distinct_lines > 4, "{k:?} working set too small");
        }
    }

    #[test]
    fn crc_branches_are_hard_to_predict() {
        let s = KernelSource::new(Kernel::Crc32, 10_000, 1).trace().stats();
        let q = KernelSource::new(Kernel::Qsort, 10_000, 1).trace().stats();
        assert!(
            s.mispredict_rate() > q.mispredict_rate(),
            "data-dependent crc bits ({}) should out-mispredict qsort ({})",
            s.mispredict_rate(),
            q.mispredict_rate()
        );
    }

    #[test]
    fn name_round_trips() {
        for &k in Kernel::all() {
            assert_eq!(Kernel::from_name(k.name()), Some(k));
            assert!(k.spec_name().ends_with(k.name()));
        }
        assert_eq!(Kernel::from_name("gzip"), None);
    }
}
