//! The trace generator.

use std::collections::VecDeque;

use serde::Serialize;
use unsync_isa::{BranchInfo, Inst, InstStream, MemInfo, OpClass, Reg, TraceProgram};

use crate::profile::{Benchmark, BenchmarkProfile};
use crate::rng::SplitMixStream;

/// Base virtual address of the synthetic data segment.
const DATA_BASE: u64 = 0x1000_0000;
/// Base virtual address of the synthetic code segment.
const CODE_BASE: u64 = 0x0040_0000;
/// Number of static branch sites a program cycles through.
const BRANCH_SITES: u64 = 256;

/// Program-phase model: real applications alternate compute-bound and
/// memory-bound *phases* rather than drawing every instruction from one
/// stationary mix. During a memory phase the load/store fractions are
/// multiplied by `mem_boost` (compute instructions absorb the
/// difference); phases alternate every `period` instructions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PhaseModel {
    /// Instructions per phase.
    pub period: u64,
    /// Multiplier on memory-op fractions during memory phases (> 1).
    pub mem_boost: f64,
}

impl PhaseModel {
    /// Validates the model.
    pub fn validate(&self) -> Result<(), String> {
        if self.period == 0 {
            return Err("phase period must be ≥ 1".into());
        }
        if !(1.0..=4.0).contains(&self.mem_boost) {
            return Err("mem_boost must be in [1, 4]".into());
        }
        Ok(())
    }
}

/// A deterministic instruction-stream generator for one benchmark.
///
/// Implements [`InstStream`]; `reset` rewinds to an identical replay of
/// the same instructions, which is how the same "program" runs on both
/// cores of a redundant pair and on every architecture under comparison.
///
/// # Examples
///
/// ```
/// use unsync_workloads::{Benchmark, WorkloadGen};
///
/// let trace = WorkloadGen::new(Benchmark::Bzip2, 10_000, 1).collect_trace();
/// let stats = trace.stats();
/// // bzip2's defining statistic (Fig. 4): ~2 % serializing instructions.
/// assert!((stats.serializing_fraction() - 0.02).abs() < 0.005);
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadGen {
    profile: BenchmarkProfile,
    length: u64,
    seed: u64,
    /// Base address of this process's data segment.
    data_base: u64,
    /// Optional compute/memory phase alternation.
    phases: Option<PhaseModel>,
    // --- replayable state ---
    rng: SplitMixStream,
    emitted: u64,
    pc: u64,
    recent_dests: VecDeque<Reg>,
    stream_line: u64,
}

impl WorkloadGen {
    /// A generator for `bench` yielding `length` instructions from `seed`.
    pub fn new(bench: Benchmark, length: u64, seed: u64) -> Self {
        Self::from_profile(bench.profile(), length, seed)
    }

    /// Like [`WorkloadGen::new`], but with the data segment at
    /// `data_base` — distinct bases model distinct processes (no shared
    /// lines), as needed by multi-pair system runs.
    pub fn new_at(bench: Benchmark, length: u64, seed: u64, data_base: u64) -> Self {
        let mut g = Self::from_profile(bench.profile(), length, seed);
        g.data_base = data_base & !63; // line-aligned
        g
    }

    /// A generator from an explicit profile (used by the ablation benches
    /// to sweep single parameters).
    pub fn from_profile(profile: BenchmarkProfile, length: u64, seed: u64) -> Self {
        profile.validate().expect("profile must be valid");
        let mut g = WorkloadGen {
            profile,
            length,
            seed,
            data_base: DATA_BASE,
            phases: None,
            rng: SplitMixStream::new(seed),
            emitted: 0,
            pc: CODE_BASE,
            recent_dests: VecDeque::new(),
            stream_line: 0,
        };
        g.reset();
        g
    }

    /// The profile being generated.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Enables compute/memory phase alternation (see [`PhaseModel`]).
    pub fn with_phases(mut self, phases: PhaseModel) -> Self {
        phases.validate().expect("phase model must be valid");
        self.phases = Some(phases);
        self
    }

    /// True while the generator is inside a memory phase.
    fn in_memory_phase(&self) -> bool {
        match self.phases {
            Some(p) => (self.emitted / p.period) % 2 == 1,
            None => false,
        }
    }

    /// Materializes the whole trace.
    pub fn collect_trace(mut self) -> TraceProgram {
        TraceProgram::from_stream(&mut self)
    }

    fn pick_op(&mut self) -> OpClass {
        let p = &self.profile;
        let boost = if self.in_memory_phase() {
            self.phases.expect("phase checked").mem_boost
        } else {
            1.0
        };
        let mut x = self.rng.next_f64();
        let mut table = [
            (OpClass::IntMul, p.frac_int_mul),
            (OpClass::IntDiv, p.frac_int_div),
            (OpClass::FpAlu, p.frac_fp_alu),
            (OpClass::FpMul, p.frac_fp_mul),
            (OpClass::FpDiv, p.frac_fp_div),
            (OpClass::Load, (p.frac_load * boost).min(0.6)),
            (OpClass::Store, (p.frac_store * boost).min(0.3)),
            (OpClass::Branch, p.frac_branch),
            (OpClass::Trap, p.frac_serializing / 2.0),
            (OpClass::MemBarrier, p.frac_serializing / 2.0),
        ];
        for (op, frac) in table.iter_mut() {
            if x < *frac {
                return *op;
            }
            x -= *frac;
        }
        OpClass::IntAlu
    }

    /// Picks a source register: with probability `dep_locality` one of the
    /// recent destinations (dependency chain), otherwise a uniformly
    /// random live register of the right bank.
    fn pick_src(&mut self, fp: bool) -> Reg {
        if !self.recent_dests.is_empty() && self.rng.chance(self.profile.dep_locality) {
            let idx = self.rng.below(self.recent_dests.len() as u64) as usize;
            return self.recent_dests[idx];
        }
        if fp {
            Reg::fp(self.rng.below(32) as u8)
        } else {
            // r31 is the zero register; keep sources in r0..r30.
            Reg::int(self.rng.below(31) as u8)
        }
    }

    /// Picks the *address* register of a load/store. Unlike data operands,
    /// address computations usually hang off long-settled induction
    /// variables; only pointer-chasing codes (mcf) make addresses depend
    /// on just-loaded values, which is what destroys memory-level
    /// parallelism.
    fn pick_addr_src(&mut self) -> Reg {
        if !self.recent_dests.is_empty() && self.rng.chance(self.profile.pointer_chase) {
            let idx = self.rng.below(self.recent_dests.len() as u64) as usize;
            return self.recent_dests[idx];
        }
        Reg::int(self.rng.below(31) as u8)
    }

    fn pick_dest(&mut self, fp: bool) -> Reg {
        let d = if fp {
            Reg::fp(self.rng.below(32) as u8)
        } else {
            Reg::int(self.rng.below(31) as u8)
        };
        self.recent_dests.push_back(d);
        while self.recent_dests.len() > self.profile.chain_window as usize {
            self.recent_dests.pop_front();
        }
        d
    }

    /// Next data address: continues the sequential stream with probability
    /// `spatial_locality`, otherwise jumps to a random line of the
    /// working set. Addresses are 8-byte aligned.
    fn pick_addr(&mut self) -> u64 {
        if self.rng.chance(self.profile.spatial_locality) {
            // Advance within the stream by one word; wrap at the working
            // set so footprints stay bounded.
            self.stream_line = (self.stream_line + 1) % (self.profile.ws_lines * 8);
        } else if self.rng.chance(self.profile.hot_fraction) {
            // Temporal locality: jump within the cache-resident hot region.
            let hot_words = self.profile.ws_lines.min(128) * 8;
            self.stream_line = self.rng.below(hot_words);
        } else {
            self.stream_line = self.rng.below(self.profile.ws_lines * 8);
        }
        self.data_base + self.stream_line * 8
    }
}

impl InstStream for WorkloadGen {
    fn next_inst(&mut self) -> Option<Inst> {
        if self.emitted >= self.length {
            return None;
        }
        let seq = self.emitted;
        let pc = self.pc;
        let op = self.pick_op();
        let fp = op.is_fp();
        let mut b = Inst::build(op).seq(seq).pc(pc);
        match op {
            OpClass::Load => {
                let addr = self.pick_addr();
                b = b
                    .src0(self.pick_addr_src())
                    .dest(self.pick_dest(fp))
                    .mem(MemInfo::dword(addr));
            }
            OpClass::Store => {
                let addr = self.pick_addr();
                b = b
                    .src0(self.pick_addr_src())
                    .src1(self.pick_src(false))
                    .mem(MemInfo::dword(addr));
            }
            OpClass::Branch => {
                // Real programs revisit a bounded set of static branch
                // sites, most of them strongly biased (loop back-edges,
                // error checks). Model each dynamic branch as one of
                // BRANCH_SITES sites with a per-site bias; the annotated
                // misprediction flag still follows the profile's rate
                // (the calibrated front-end model), while the site/bias
                // structure is what a *live* predictor keys on.
                let site = self.rng.below(BRANCH_SITES);
                let site_pc = CODE_BASE + site * 4;
                let h = unsync_isa::exec::splitmix64(self.seed ^ site.wrapping_mul(0x9e37));
                let bias = match h % 10 {
                    0..=5 => 0.95, // loop back-edges: almost always taken
                    6..=8 => 0.05, // guards: almost never taken
                    _ => 0.55,     // data-dependent branches
                };
                let taken = self.rng.chance(bias);
                let mispredicted = self.rng.chance(self.profile.mispredict_rate);
                let target = CODE_BASE + self.rng.below(1 << 16) * 4;
                b = b.pc(site_pc).src0(self.pick_src(false)).branch(BranchInfo {
                    taken,
                    mispredicted,
                    target,
                });
            }
            OpClass::Trap | OpClass::MemBarrier | OpClass::Nop => {}
            _ => {
                // Register-to-register compute.
                b = b
                    .src0(self.pick_src(fp))
                    .src1(self.pick_src(fp))
                    .dest(self.pick_dest(fp));
            }
        }
        let inst = b.finish();
        self.pc = match inst.branch {
            Some(br) if br.taken => br.target,
            // Non-branch flow (and not-taken branches) continue from the
            // sequential counter; branch instructions themselves carry
            // their static site pc.
            _ => pc.wrapping_add(4),
        };
        self.emitted += 1;
        Some(inst)
    }

    fn reset(&mut self) {
        self.rng = SplitMixStream::new(self.seed);
        self.emitted = 0;
        self.pc = CODE_BASE;
        self.recent_dests.clear();
        // Start the stream at a deterministic pseudo-random line so that
        // different seeds explore different parts of the working set.
        self.stream_line = SplitMixStream::new(self.seed ^ 0x5151).below(self.profile.ws_lines * 8);
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unsync_isa::OpClass;

    const N: u64 = 40_000;

    #[test]
    fn generation_is_deterministic() {
        let a = WorkloadGen::new(Benchmark::Bzip2, 1000, 7).collect_trace();
        let b = WorkloadGen::new(Benchmark::Bzip2, 1000, 7).collect_trace();
        assert_eq!(a.insts(), b.insts());
        let c = WorkloadGen::new(Benchmark::Bzip2, 1000, 8).collect_trace();
        assert_ne!(a.insts(), c.insts());
    }

    #[test]
    fn reset_replays_identically() {
        let mut g = WorkloadGen::new(Benchmark::Ammp, 500, 3);
        let first: Vec<_> = std::iter::from_fn(|| g.next_inst()).collect();
        g.reset();
        let second: Vec<_> = std::iter::from_fn(|| g.next_inst()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn trace_length_and_density() {
        let t = WorkloadGen::new(Benchmark::Gzip, 1234, 1).collect_trace();
        assert_eq!(t.len(), 1234);
        // TraceProgram::new would have panicked on non-dense seq numbers.
    }

    #[test]
    fn serializing_fraction_matches_profile() {
        for b in [
            Benchmark::Bzip2,
            Benchmark::Ammp,
            Benchmark::Galgel,
            Benchmark::Sha,
        ] {
            let stats = WorkloadGen::new(b, N, 11).collect_trace().stats();
            let want = b.profile().frac_serializing;
            let got = stats.serializing_fraction();
            assert!(
                (got - want).abs() < 0.004,
                "{}: wanted {want}, got {got}",
                b.name()
            );
        }
    }

    #[test]
    fn store_fraction_matches_profile() {
        for b in [Benchmark::Qsort, Benchmark::Bitcount, Benchmark::Rijndael] {
            let stats = WorkloadGen::new(b, N, 13).collect_trace().stats();
            let want = b.profile().frac_store;
            let got = stats.store_fraction();
            assert!(
                (got - want).abs() < 0.01,
                "{}: wanted {want}, got {got}",
                b.name()
            );
        }
    }

    #[test]
    fn mispredict_rate_matches_profile() {
        let b = Benchmark::Parser;
        let stats = WorkloadGen::new(b, N, 17).collect_trace().stats();
        let got = stats.mispredict_rate();
        let want = b.profile().mispredict_rate;
        assert!((got - want).abs() < 0.02, "wanted {want}, got {got}");
    }

    #[test]
    fn working_set_is_respected() {
        let b = Benchmark::Sha; // 256-line working set
        let t = WorkloadGen::new(b, N, 19).collect_trace();
        let stats = t.stats();
        assert!(
            stats.distinct_lines <= 256 * 8 / 8 + 1,
            "lines {}",
            stats.distinct_lines
        );
        // All addresses inside the data segment.
        for i in t.insts() {
            if let Some(m) = i.mem {
                assert!(m.addr >= DATA_BASE);
                assert!(m.addr < DATA_BASE + b.profile().ws_lines * 64);
            }
        }
    }

    #[test]
    fn fp_workloads_emit_fp_ops() {
        let stats = WorkloadGen::new(Benchmark::Galgel, N, 23)
            .collect_trace()
            .stats();
        let fp_frac = stats.fraction(OpClass::FpAlu)
            + stats.fraction(OpClass::FpMul)
            + stats.fraction(OpClass::FpDiv);
        assert!(fp_frac > 0.35, "galgel fp fraction {fp_frac}");
        let int_stats = WorkloadGen::new(Benchmark::Bzip2, N, 23)
            .collect_trace()
            .stats();
        assert_eq!(int_stats.count(OpClass::FpAlu), 0);
    }

    #[test]
    fn taken_branches_redirect_pc_consistently() {
        let t = WorkloadGen::new(Benchmark::Parser, 2000, 29).collect_trace();
        for w in t.insts().windows(2) {
            let (a, b) = (&w[0], &w[1]);
            // Branch instructions carry their static *site* pc, so pc
            // continuity is only checked between non-branch neighbours.
            if b.op.is_branch() {
                continue;
            }
            if let Some(br) = a.branch {
                if br.taken {
                    assert_eq!(b.pc, br.target);
                }
                // Not-taken branches resume the sequential stream from
                // the generator's internal counter.
            } else {
                assert_eq!(b.pc, a.pc.wrapping_add(4));
            }
        }
    }

    #[test]
    fn branches_reuse_a_bounded_set_of_static_sites() {
        let t = WorkloadGen::new(Benchmark::Parser, 40_000, 29).collect_trace();
        let sites: std::collections::BTreeSet<u64> = t
            .insts()
            .iter()
            .filter(|i| i.op.is_branch())
            .map(|i| i.pc)
            .collect();
        assert!(sites.len() <= 256, "{} sites", sites.len());
        assert!(sites.len() > 100, "{} sites", sites.len());
    }

    #[test]
    fn phases_create_bursty_memory_behaviour() {
        let phased = WorkloadGen::new(Benchmark::Gzip, 40_000, 3)
            .with_phases(PhaseModel {
                period: 2_000,
                mem_boost: 2.0,
            })
            .collect_trace();
        let flat = WorkloadGen::new(Benchmark::Gzip, 40_000, 3).collect_trace();
        // Windowed memory-op fraction varies much more with phases on.
        let windowed_var = |t: &unsync_isa::TraceProgram| {
            let w = 2_000;
            let fracs: Vec<f64> = t
                .insts()
                .chunks(w)
                .map(|c| c.iter().filter(|i| i.op.is_mem()).count() as f64 / c.len() as f64)
                .collect();
            let mean = fracs.iter().sum::<f64>() / fracs.len() as f64;
            fracs.iter().map(|f| (f - mean) * (f - mean)).sum::<f64>() / fracs.len() as f64
        };
        assert!(
            windowed_var(&phased) > 4.0 * windowed_var(&flat),
            "{} vs {}",
            windowed_var(&phased),
            windowed_var(&flat)
        );
        // Still a valid, dense trace.
        assert_eq!(phased.len(), 40_000);
    }

    #[test]
    fn phase_model_validation() {
        assert!(PhaseModel {
            period: 0,
            mem_boost: 2.0
        }
        .validate()
        .is_err());
        assert!(PhaseModel {
            period: 100,
            mem_boost: 9.0
        }
        .validate()
        .is_err());
        assert!(PhaseModel {
            period: 100,
            mem_boost: 2.0
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn every_benchmark_generates_valid_traces() {
        for &b in Benchmark::all() {
            let t = WorkloadGen::new(b, 2000, 31).collect_trace();
            assert_eq!(t.len(), 2000, "{}", b.name());
            for i in t.insts() {
                i.validate().unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            }
        }
    }

    #[test]
    fn distinct_data_bases_give_disjoint_footprints() {
        let a = WorkloadGen::new_at(Benchmark::Sha, 2_000, 1, 0x1000_0000).collect_trace();
        let b = WorkloadGen::new_at(Benchmark::Sha, 2_000, 1, 0x9000_0000).collect_trace();
        let lines = |t: &unsync_isa::TraceProgram| {
            t.insts()
                .iter()
                .filter_map(|i| i.mem.map(|m| m.addr >> 6))
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert!(lines(&a).is_disjoint(&lines(&b)));
        // Same seed, same relative behaviour: identical op sequences.
        for (x, y) in a.insts().iter().zip(b.insts()) {
            assert_eq!(x.op, y.op);
        }
    }

    #[test]
    fn mcf_misses_more_than_sha_would() {
        // Distinct-lines proxy: mcf's random accesses over a huge working
        // set touch far more lines than sha's streaming over 256.
        let mcf = WorkloadGen::new(Benchmark::Mcf, N, 37)
            .collect_trace()
            .stats();
        let sha = WorkloadGen::new(Benchmark::Sha, N, 37)
            .collect_trace()
            .stats();
        assert!(mcf.distinct_lines > 10 * sha.distinct_lines);
    }
}
