//! The workload-production seam: [`WorkloadSource`].
//!
//! Every consumer of traces — the bench runner, the experiment suite,
//! the lane sweep, the microbenchmarks, the sim and exec test beds —
//! obtains its [`TraceProgram`] through this trait instead of
//! constructing [`WorkloadGen`] directly. That gives the repo exactly
//! one seam where a new trace backend plugs in; today there are two:
//!
//! * [`SyntheticSource`] — the seeded statistical generators
//!   ([`WorkloadGen`]), profiles *calibrated to* the paper's named
//!   statistics. This remains the default everywhere, so every
//!   pre-existing golden stays byte-identical.
//! * [`crate::kernels::KernelSource`] — real MiBench-style kernels
//!   (qsort, crc32, dijkstra, stringsearch) built directly in the
//!   `unsync-isa` instruction set and executed through
//!   [`unsync_isa::ArchState`] semantics, so their statistics are
//!   *measured from* executed code rather than assumed.
//!
//! [`WorkloadSpec`] is the copyable name of either backend
//! (`"gzip"`, `"kernel:qsort"`, …) and is what environment knobs such
//! as `UNSYNC_WORKLOAD` parse into.

use unsync_isa::TraceProgram;

use crate::gen::WorkloadGen;
use crate::kernels::{Kernel, KernelSource};
use crate::profile::Benchmark;

/// Default base address of a source's data segment — the same base
/// [`WorkloadGen::new`] uses, so `trace()` and `trace_at(DEFAULT_DATA_BASE)`
/// are the same program.
pub const DEFAULT_DATA_BASE: u64 = 0x1000_0000;

/// A named, seeded producer of deterministic instruction traces.
///
/// Implementations are pure functions of their construction parameters:
/// the same source always yields the identical [`TraceProgram`], on
/// every platform. `trace_at` relocates only the data segment, which is
/// how a many-lane system gives each lane a disjoint address space.
pub trait WorkloadSource {
    /// Stable workload name (`"gzip"`, `"kernel:qsort"`, …); used in
    /// run logs, cache keys and environment knobs.
    fn name(&self) -> &'static str;

    /// Number of instructions the trace will contain.
    fn length(&self) -> u64;

    /// The seed the trace is derived from.
    fn seed(&self) -> u64;

    /// Materializes the trace with the data segment based at
    /// `data_base` (rounded down to a cache-line boundary).
    fn trace_at(&self, data_base: u64) -> TraceProgram;

    /// Materializes the trace at the default data base.
    fn trace(&self) -> TraceProgram {
        self.trace_at(DEFAULT_DATA_BASE)
    }
}

/// The synthetic backend: wraps [`WorkloadGen`] behind the seam.
///
/// Delegates straight to [`WorkloadGen::new_at`], so traces are
/// bit-identical to what direct construction produced before the seam
/// existed — the property every pre-existing golden depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyntheticSource {
    /// The modelled benchmark.
    pub bench: Benchmark,
    /// Trace length in instructions.
    pub length: u64,
    /// Generator seed.
    pub seed: u64,
}

impl SyntheticSource {
    /// A synthetic source for `bench` with the given length and seed.
    pub fn new(bench: Benchmark, length: u64, seed: u64) -> Self {
        SyntheticSource {
            bench,
            length,
            seed,
        }
    }
}

impl WorkloadSource for SyntheticSource {
    fn name(&self) -> &'static str {
        self.bench.name()
    }

    fn length(&self) -> u64 {
        self.length
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn trace_at(&self, data_base: u64) -> TraceProgram {
        WorkloadGen::new_at(self.bench, self.length, self.seed, data_base).collect_trace()
    }
}

/// The copyable name of a workload backend: a synthetic benchmark or a
/// real-ISA kernel.
///
/// Parsed from strings like `"gzip"` (synthetic) or `"kernel:qsort"`
/// (kernel backend). The `kernel:` prefix disambiguates the four
/// MiBench names (`qsort`, `crc32`, `dijkstra`, `stringsearch`) that
/// exist in *both* backends — as calibrated profiles and as executed
/// kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// A seeded statistical generator ([`SyntheticSource`]).
    Synthetic(Benchmark),
    /// A real-ISA kernel ([`KernelSource`]).
    Kernel(Kernel),
}

impl WorkloadSpec {
    /// Parses a workload name: a synthetic benchmark name (`"gzip"`)
    /// or a `kernel:`-prefixed kernel name (`"kernel:crc32"`).
    pub fn parse(name: &str) -> Result<WorkloadSpec, String> {
        if let Some(kernel) = name.strip_prefix("kernel:") {
            return Kernel::from_name(kernel)
                .map(WorkloadSpec::Kernel)
                .ok_or_else(|| {
                    let names: Vec<_> = Kernel::all().iter().map(|k| k.name()).collect();
                    format!("unknown kernel {kernel:?}; kernels: {}", names.join(", "))
                });
        }
        Benchmark::all()
            .iter()
            .find(|b| b.name() == name)
            .copied()
            .map(WorkloadSpec::Synthetic)
            .ok_or_else(|| format!("unknown benchmark {name:?} (kernels use a \"kernel:\" prefix)"))
    }

    /// The stable name this spec parses back from.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::Synthetic(b) => b.name(),
            WorkloadSpec::Kernel(k) => k.spec_name(),
        }
    }

    /// Binds the spec to a length and seed, yielding a concrete source.
    pub fn source(self, length: u64, seed: u64) -> AnySource {
        AnySource {
            spec: self,
            length,
            seed,
        }
    }
}

/// A [`WorkloadSource`] over either backend, selected by
/// [`WorkloadSpec`]. Copyable, so configs can carry it by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnySource {
    /// Which backend produces the trace.
    pub spec: WorkloadSpec,
    /// Trace length in instructions.
    pub length: u64,
    /// Source seed.
    pub seed: u64,
}

impl WorkloadSource for AnySource {
    fn name(&self) -> &'static str {
        self.spec.name()
    }

    fn length(&self) -> u64 {
        self.length
    }

    fn seed(&self) -> u64 {
        self.seed
    }

    fn trace_at(&self, data_base: u64) -> TraceProgram {
        match self.spec {
            WorkloadSpec::Synthetic(b) => {
                SyntheticSource::new(b, self.length, self.seed).trace_at(data_base)
            }
            WorkloadSpec::Kernel(k) => {
                KernelSource::new(k, self.length, self.seed).trace_at(data_base)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_source_is_bit_identical_to_direct_construction() {
        let direct = WorkloadGen::new(Benchmark::Gzip, 2_000, 7).collect_trace();
        let seamed = SyntheticSource::new(Benchmark::Gzip, 2_000, 7).trace();
        assert_eq!(direct, seamed);
        let direct_at = WorkloadGen::new_at(Benchmark::Sha, 1_000, 3, 0x9000_0000).collect_trace();
        let seamed_at = SyntheticSource::new(Benchmark::Sha, 1_000, 3).trace_at(0x9000_0000);
        assert_eq!(direct_at, seamed_at);
    }

    #[test]
    fn spec_parses_both_backends() {
        assert_eq!(
            WorkloadSpec::parse("gzip"),
            Ok(WorkloadSpec::Synthetic(Benchmark::Gzip))
        );
        assert_eq!(
            WorkloadSpec::parse("qsort"),
            Ok(WorkloadSpec::Synthetic(Benchmark::Qsort)),
            "bare MiBench names stay synthetic — kernels need the prefix"
        );
        assert_eq!(
            WorkloadSpec::parse("kernel:qsort"),
            Ok(WorkloadSpec::Kernel(Kernel::Qsort))
        );
        assert!(WorkloadSpec::parse("no_such").is_err());
        assert!(WorkloadSpec::parse("kernel:no_such").is_err());
    }

    #[test]
    fn spec_names_round_trip() {
        for b in Benchmark::all() {
            let spec = WorkloadSpec::Synthetic(*b);
            assert_eq!(WorkloadSpec::parse(spec.name()), Ok(spec));
        }
        for k in Kernel::all() {
            let spec = WorkloadSpec::Kernel(*k);
            assert_eq!(WorkloadSpec::parse(spec.name()), Ok(spec));
        }
    }

    #[test]
    fn any_source_matches_its_backend() {
        let spec = WorkloadSpec::Synthetic(Benchmark::Mcf);
        let via_any = spec.source(1_500, 9).trace();
        let via_backend = SyntheticSource::new(Benchmark::Mcf, 1_500, 9).trace();
        assert_eq!(via_any, via_backend);
        assert_eq!(spec.source(1_500, 9).name(), "mcf");
    }
}
