//! # unsync-workloads
//!
//! Synthetic SPEC2000 / MiBench workload models.
//!
//! The paper evaluates over SPEC2000 and MiBench binaries run under a
//! modified M5. Neither the binaries nor M5 checkpoints are available
//! here, so each named benchmark is modelled as a *seeded statistical
//! trace generator* whose parameters are the trace statistics the paper's
//! own analysis keys on:
//!
//! * **serializing-instruction fraction** — Fig. 4 names bzip2 ≈ 2 %,
//!   ammp ≈ 1.7 %, galgel ≈ 1 % of dynamic instructions;
//! * **instruction mix and dependency density** — what drives ROB/issue
//!   pressure (Fig. 5's ammp/galgel ROB saturation);
//! * **store intensity** — what pressures the Communication Buffer
//!   (Fig. 6);
//! * **memory working set and locality** — what sets L1/L2 miss rates and
//!   bus traffic;
//! * **branch misprediction rate** — front-end redirect costs.
//!
//! Because every downstream experiment compares *relative* performance of
//! the baseline / Reunion / UnSync machinery on the *same* trace, a
//! statistically faithful trace preserves the orderings and crossovers the
//! paper reports even though absolute IPC differs from the authors' Alpha
//! binaries.
//!
//! Generation is fully deterministic: `(benchmark, length, seed)` always
//! yields the identical instruction sequence, on every platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod kernels;
pub mod profile;
pub mod rng;
pub mod source;

pub use gen::{PhaseModel, WorkloadGen};
pub use kernels::{Kernel, KernelSource};
pub use profile::{Benchmark, BenchmarkProfile, Suite};
pub use rng::SplitMixStream;
pub use source::{AnySource, SyntheticSource, WorkloadSource, WorkloadSpec};
