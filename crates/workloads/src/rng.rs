//! Self-contained deterministic random stream.
//!
//! Workload generation must be bit-reproducible across platforms and
//! library versions forever (the experiment harness records seeds in
//! EXPERIMENTS.md), so the generator owns its PRNG instead of relying on
//! `rand`'s unstable `SmallRng` algorithm. The stream is SplitMix64 — a
//! counter-based generator with excellent statistical quality for
//! simulation workloads and O(1) skippability.

use serde::{Deserialize, Serialize};
use unsync_isa::exec::splitmix64;

/// A deterministic stream of pseudo-random values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SplitMixStream {
    state: u64,
}

impl SplitMixStream {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        // Pre-whiten so that small seeds (0, 1, 2 …) give unrelated streams.
        SplitMixStream {
            state: splitmix64(seed ^ 0x6a09_e667_f3bc_c908),
        }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping (tiny bias is irrelevant
        // for workload synthesis).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Geometric-ish small integer: number of failures before a success
    /// with probability `p`, capped at `cap`.
    pub fn geometric_capped(&mut self, p: f64, cap: u32) -> u32 {
        debug_assert!((0.0..=1.0).contains(&p));
        let mut n = 0;
        while n < cap && !self.chance(p) {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMixStream::new(42);
        let mut b = SplitMixStream::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMixStream::new(43);
        assert_ne!(SplitMixStream::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut s = SplitMixStream::new(7);
        for _ in 0..10_000 {
            let x = s.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut s = SplitMixStream::new(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = s.below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&x| x), "all buckets hit");
    }

    #[test]
    fn chance_frequency_roughly_matches() {
        let mut s = SplitMixStream::new(11);
        let hits = (0..100_000).filter(|_| s.chance(0.3)).count() as f64 / 100_000.0;
        assert!((hits - 0.3).abs() < 0.01, "observed {hits}");
    }

    #[test]
    fn geometric_capped_respects_cap() {
        let mut s = SplitMixStream::new(13);
        for _ in 0..1000 {
            assert!(s.geometric_capped(0.1, 5) <= 5);
        }
        // p=1 always succeeds immediately.
        assert_eq!(s.geometric_capped(1.0, 5), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn below_zero_bound_panics() {
        SplitMixStream::new(1).below(0);
    }
}
