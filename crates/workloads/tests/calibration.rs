//! Calibration tests: every benchmark's generated traces must match its
//! declared profile statistics — this is what makes the synthetic-trace
//! substitution (DESIGN.md §2) defensible.

use unsync_isa::{InstStream, OpClass};
use unsync_workloads::{Benchmark, WorkloadGen};

const N: u64 = 60_000;

#[test]
fn every_benchmark_matches_its_declared_mix() {
    for &bench in Benchmark::all() {
        let p = bench.profile();
        let stats = WorkloadGen::new(bench, N, 101).collect_trace().stats();
        let close = |got: f64, want: f64, tol: f64, label: &str| {
            assert!(
                (got - want).abs() < tol,
                "{}: {label} = {got:.4}, declared {want:.4}",
                bench.name()
            );
        };
        close(
            stats.fraction(OpClass::Load),
            p.frac_load,
            0.01,
            "load fraction",
        );
        close(
            stats.fraction(OpClass::Store),
            p.frac_store,
            0.01,
            "store fraction",
        );
        close(
            stats.fraction(OpClass::Branch),
            p.frac_branch,
            0.01,
            "branch fraction",
        );
        close(
            stats.serializing_fraction(),
            p.frac_serializing,
            0.004,
            "serializing fraction",
        );
        close(
            stats.fraction(OpClass::FpAlu)
                + stats.fraction(OpClass::FpMul)
                + stats.fraction(OpClass::FpDiv),
            p.frac_fp_alu + p.frac_fp_mul + p.frac_fp_div,
            0.012,
            "fp fraction",
        );
        if p.frac_branch > 0.03 {
            close(
                stats.mispredict_rate(),
                p.mispredict_rate,
                0.03,
                "mispredict rate",
            );
        }
    }
}

#[test]
fn working_sets_stay_within_declared_bounds() {
    for &bench in Benchmark::all() {
        let p = bench.profile();
        let t = WorkloadGen::new(bench, N, 102).collect_trace();
        for inst in t.insts() {
            if let Some(m) = inst.mem {
                assert!(
                    m.addr >= 0x1000_0000 && m.addr < 0x1000_0000 + p.ws_lines * 64,
                    "{}: address {:#x} outside declared working set",
                    bench.name(),
                    m.addr
                );
            }
        }
        // Footprint (distinct lines) never exceeds the declared working set.
        assert!(
            t.stats().distinct_lines <= p.ws_lines,
            "{}: {} distinct lines > ws {}",
            bench.name(),
            t.stats().distinct_lines,
            p.ws_lines
        );
    }
}

#[test]
fn seeds_change_traces_but_not_statistics() {
    for &bench in &[Benchmark::Ammp, Benchmark::Dijkstra] {
        let a = WorkloadGen::new(bench, N, 1).collect_trace();
        let b = WorkloadGen::new(bench, N, 2).collect_trace();
        assert_ne!(a.insts(), b.insts(), "{}", bench.name());
        let (sa, sb) = (a.stats(), b.stats());
        assert!(
            (sa.store_fraction() - sb.store_fraction()).abs() < 0.01,
            "{}",
            bench.name()
        );
        assert!(
            (sa.serializing_fraction() - sb.serializing_fraction()).abs() < 0.004,
            "{}",
            bench.name()
        );
    }
}

#[test]
fn streams_and_collected_traces_agree() {
    let mut g = WorkloadGen::new(Benchmark::Twolf, 5_000, 9);
    let collected = WorkloadGen::new(Benchmark::Twolf, 5_000, 9).collect_trace();
    let mut idx = 0;
    while let Some(inst) = g.next_inst() {
        assert_eq!(inst, collected.insts()[idx]);
        idx += 1;
    }
    assert_eq!(idx, collected.len());
}

#[test]
fn serialized_traces_round_trip_through_the_codec() {
    for &bench in &[Benchmark::Bzip2, Benchmark::Galgel, Benchmark::Rijndael] {
        let t = WorkloadGen::new(bench, 8_000, 55).collect_trace();
        let bytes = unsync_isa::encode_trace(&t);
        let back = unsync_isa::decode_trace(&bytes).unwrap();
        assert_eq!(t.insts(), back.insts(), "{}", bench.name());
    }
}
