//! Inert `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace annotates most model types with serde derives so that
//! downstream consumers *can* serialize them, but nothing in-tree ever
//! calls a serializer — run logs are written through the hand-rolled
//! JSON layer in `unsync-bench`. This crate lets the annotations stay
//! (and keeps the door open to swapping real serde back in) while
//! building fully offline: each derive expands to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
