//! Offline stand-in for the `serde` facade.
//!
//! The simulator annotates its model types with `Serialize` /
//! `Deserialize` derives, but no in-tree code path serializes through
//! serde (run logs use `unsync_bench::runlog`'s hand-rolled JSON). The
//! build environment has no registry access, so this crate supplies the
//! two names as marker traits plus the inert derive macros from the
//! sibling `serde_derive` shim. Swapping the real serde back in is a
//! two-line `Cargo.toml` change.

#![forbid(unsafe_code)]

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
