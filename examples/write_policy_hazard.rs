//! The Fig. 2 experiment: why UnSync *requires* a write-through L1.
//!
//! With a write-back L1, a second soft error striking a dirty line of the
//! error-free core during recovery leaves no correct copy of that data
//! anywhere in the system — an unrecoverable state. With write-through,
//! the ECC-protected L2 always holds a correct copy and the same double
//! strike is just two recoveries.
//!
//! ```sh
//! cargo run --release --example write_policy_hazard
//! ```

use unsync::prelude::*;

fn main() {
    let trace = WorkloadGen::new(Benchmark::Qsort, 20_000, 11).collect_trace();

    // The double-strike scenario of Fig. 2: an error on core 0, and —
    // inside the recovery window — a strike on the error-free core 1's
    // L1 (which, under write-back, holds dirty lines that exist nowhere
    // else).
    let double_strike = [
        PairFault {
            at: 5_000,
            core: 0,
            site: FaultSite {
                target: FaultTarget::RegisterFile,
                bit_offset: 131,
            },
            kind: unsync_fault::FaultKind::Single,
        },
        PairFault {
            at: 5_000,
            core: 1,
            site: FaultSite {
                target: FaultTarget::L1Data,
                bit_offset: 77_777,
            },
            kind: unsync_fault::FaultKind::Single,
        },
    ];

    println!("Fig. 2 double-strike scenario (error on core 0, then core 1's L1):\n");
    for (label, pair) in [
        (
            "write-through L1 (the paper's design)",
            UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline()),
        ),
        (
            "write-back L1 (the rejected design)",
            UnsyncPair::with_write_back_l1(CoreConfig::table1(), UnsyncConfig::paper_baseline()),
        ),
    ] {
        let out = pair.run(&trace, &double_strike);
        println!("{label}:");
        println!(
            "  detections {}  recoveries {}  unrecoverable {}  memory matches golden: {}",
            out.detections, out.recoveries, out.unrecoverable, out.memory_matches_golden
        );
        println!(
            "  verdict: {}\n",
            if out.correct() {
                "correct execution — the L2 always held a good copy"
            } else {
                "UNRECOVERABLE — the only copy of dirty data was struck (Fig. 2)"
            }
        );
    }
}
