//! Fault-injection campaign: strike both architectures with the same set
//! of soft errors and verify the outcomes against a golden run — the
//! §VI-D region-of-error-coverage experiment in miniature.
//!
//! ```sh
//! cargo run --release --example fault_injection_campaign
//! ```

use unsync::prelude::*;

fn main() {
    let insts = 20_000u64;
    let campaigns = 30u64;
    let trace = WorkloadGen::new(Benchmark::Gzip, insts, 7).collect_trace();

    println!(
        "static ROEC: UnSync {:.1}% of vulnerable bits, Reunion {:.1}%\n",
        Coverage::unsync().roec_fraction() * 100.0,
        Coverage::reunion().roec_fraction() * 100.0
    );

    let reunion = ReunionPair::new(CoreConfig::table1(), ReunionConfig::paper_baseline());
    let unsync = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline());

    println!(
        "{:<4} {:<14} {:<6} {:>18} {:>18}",
        "#", "struck", "core", "Reunion outcome", "UnSync outcome"
    );
    let (mut r_ok, mut u_ok) = (0, 0);
    // Stratified over structures so every coverage class appears (the
    // §VI-D campaign binary samples proportionally to bit capacity
    // instead, which is dominated by the L1 arrays).
    let targets = unsync::fault::inject::ALL_TARGETS;
    for i in 0..campaigns {
        let mut fault = PairFault::plan(1234, i);
        fault.site.target = targets[(i % targets.len() as u64) as usize];
        fault.site.bit_offset %= fault.site.target.bits();
        fault.at = 1_000 + i * (insts - 2_000) / campaigns;

        let r = reunion.run(&trace, &[fault]);
        let u = unsync.run(&trace, &[fault]);
        let describe_r = if r.correct() {
            r_ok += 1;
            if r.corrected_in_place > 0 {
                "ECC-corrected"
            } else if r.rollbacks > 0 {
                "rolled back"
            } else {
                "benign"
            }
        } else if r.unrecoverable > 0 {
            "UNRECOVERABLE"
        } else {
            "SILENT CORRUPTION"
        };
        let describe_u = if u.correct() {
            u_ok += 1;
            "recovered"
        } else {
            "FAILED"
        };
        println!(
            "{:<4} {:<14} {:<6} {:>18} {:>18}",
            i,
            format!("{:?}", fault.site.target),
            fault.core,
            describe_r,
            describe_u
        );
    }
    println!(
        "\ncorrect outcomes: Reunion {r_ok}/{campaigns}, UnSync {u_ok}/{campaigns} \
         (UnSync's always-forward recovery covers every sequential element)"
    );
}
