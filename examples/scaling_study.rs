//! Technology-scaling study: how the UnSync-vs-Reunion hardware gap
//! evolves from 90 nm to 22 nm — §VI-A2's argument extended beyond the
//! paper's three chips.
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use unsync::hwcost::scaling::{pair_area_difference_um2, scale, ALL_NODES};
use unsync::hwcost::CoreModel;

fn main() {
    let base = CoreModel::mips_baseline();
    let reunion = CoreModel::reunion();
    let unsync = CoreModel::unsync();

    println!(
        "{:>6} {:>16} {:>16} {:>16} {:>14} {:>16}",
        "node", "baseline µm²", "Reunion µm²", "UnSync µm²", "pair gap µm²", "pairs/100mm²"
    );
    for node in ALL_NODES {
        let b = scale(&base, node);
        let r = scale(&reunion, node);
        let u = scale(&unsync, node);
        let pairs_per_100mm2 = 100e6 / (2.0 * u.total_area_um2);
        println!(
            "{:>4}nm {:>16.0} {:>16.0} {:>16.0} {:>14.0} {:>16.0}",
            node.nm(),
            b.total_area_um2,
            r.total_area_um2,
            u.total_area_um2,
            pair_area_difference_um2(node),
            pairs_per_100mm2
        );
    }
    println!(
        "\nReading: the per-pair gap shrinks with feature size, but a fixed die hosts \
         quadratically more pairs — the die-level area freed by choosing UnSync over \
         Reunion is invariant, while the soft-error exposure it buys protection \
         against keeps growing with integration (§I's motivation)."
    );
}
