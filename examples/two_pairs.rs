//! The Fig. 1 system: two UnSync core-pairs on one CMP, each redundantly
//! executing its own workload over the shared ECC-protected L2.
//!
//! ```sh
//! cargo run --release --example two_pairs
//! ```

use unsync::core::UnsyncSystem;
use unsync::prelude::*;

fn main() {
    let insts = 40_000u64;
    // Two processes at disjoint address bases.
    let workloads = [
        (Benchmark::Galgel, 0x1000_0000u64),
        (Benchmark::Mcf, 0x9000_0000u64),
    ];
    let traces: Vec<TraceProgram> = workloads
        .iter()
        .map(|&(b, base)| WorkloadGen::new_at(b, insts, 17, base).collect_trace())
        .collect();

    let sys = UnsyncSystem::new(CoreConfig::table1(), UnsyncConfig::paper_baseline());

    println!("each pair alone on the chip:");
    for (i, t) in traces.iter().enumerate() {
        let alone = sys.run(std::slice::from_ref(t));
        println!(
            "  pair {} ({:<8}) IPC {:.3}",
            i,
            workloads[i].0.name(),
            alone.pairs[0].ipc()
        );
    }

    println!("\nboth pairs sharing the L2 (the Table I 4-core CMP):");
    let out = sys.run(&traces);
    for p in &out.pairs {
        println!(
            "  pair {} ({:<8}) IPC {:.3}  CB drains {}  CB stall cycles {}",
            p.pair,
            workloads[p.pair].0.name(),
            p.ipc(),
            p.cb_drained,
            p.cb_full_stall_cycles
        );
    }
    println!("  shared L2 miss rate: {:.1}%", out.l2_miss_rate * 100.0);
    println!(
        "\nReading: redundant pairs do not synchronize with each other either — the only \
         cross-pair coupling is ordinary L2/MSHR contention."
    );
}
