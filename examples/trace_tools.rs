//! Trace tooling: generate → serialize → reload → inspect → golden-run.
//!
//! Shows the UTRC trace codec and the functional golden runner — the
//! workflow for shipping regression traces or driving the simulator from
//! externally produced instruction streams.
//!
//! ```sh
//! cargo run --release --example trace_tools [out.utrc]
//! ```

use unsync::prelude::*;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "/tmp/unsync_demo.utrc".into());
    let bench = Benchmark::Dijkstra;
    let trace = WorkloadGen::new(bench, 2_000, 2026).collect_trace();

    // Serialize and reload.
    let bytes = unsync::isa::encode_trace(&trace);
    std::fs::write(&path, &bytes).expect("write trace file");
    let loaded = unsync::isa::decode_trace(&std::fs::read(&path).expect("read trace file"))
        .expect("decode trace file");
    assert_eq!(trace.insts(), loaded.insts());
    println!(
        "{}: {} instructions, {} bytes on disk ({:.1} B/inst)",
        path,
        loaded.len(),
        bytes.len(),
        bytes.len() as f64 / loaded.len() as f64
    );

    // Inspect the head of the trace.
    println!("\nfirst 12 instructions:");
    for inst in &loaded.insts()[..12] {
        println!("  {inst}");
    }

    // Trace statistics.
    let stats = loaded.stats();
    println!(
        "\nmix: {:.1}% loads, {:.1}% stores, {:.1}% branches, {:.2}% serializing; \
         {} distinct lines",
        stats.fraction(OpClass::Load) * 100.0,
        stats.fraction(OpClass::Store) * 100.0,
        stats.fraction(OpClass::Branch) * 100.0,
        stats.serializing_fraction() * 100.0,
        stats.distinct_lines
    );

    // Golden functional run: the correctness oracle for fault campaigns.
    let (state, mem) = golden_run(&loaded);
    let digest = mem.iter().fold(0u64, |acc, (a, v)| {
        unsync::isa::exec::splitmix64(acc ^ a ^ v.rotate_left(17))
    });
    println!(
        "\ngolden run: pc = {:#x}, {} memory words written, digest {digest:#018x}",
        state.pc,
        mem.footprint_words()
    );
    println!("(identical on every platform for this trace — the oracle every fault");
    println!(" experiment compares against)");
}
