//! Quickstart: run one benchmark on all three configurations and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use unsync::prelude::*;

fn main() {
    let bench = Benchmark::Bzip2;
    let insts = 50_000;
    let seed = 42;

    println!(
        "workload: {} ({insts} instructions, seed {seed})",
        bench.name()
    );
    let profile = bench.profile();
    println!(
        "  {:.1}% loads, {:.1}% stores, {:.2}% serializing instructions",
        profile.frac_load * 100.0,
        profile.frac_store * 100.0,
        profile.frac_serializing * 100.0
    );

    // 1. The unprotected baseline CMP core (Table I).
    let mut stream = WorkloadGen::new(bench, insts, seed);
    let base = run_baseline(CoreConfig::table1(), &mut stream);
    println!(
        "\nbaseline:      IPC {:.3}  ({} cycles)",
        base.ipc(),
        base.core.last_commit_cycle
    );

    // 2. A Reunion vocal/mute pair (fingerprint comparison, FI = 10).
    let trace = WorkloadGen::new(bench, insts, seed).collect_trace();
    let reunion = ReunionPair::new(CoreConfig::table1(), ReunionConfig::paper_baseline());
    let r = reunion.run(&trace, &[]);
    println!(
        "reunion pair:  IPC {:.3}  ({} cycles, +{:.2}% vs baseline)",
        r.ipc(),
        r.cycles,
        (r.cycles as f64 / base.core.last_commit_cycle as f64 - 1.0) * 100.0
    );

    // 3. An UnSync pair (hardware detection, Communication Buffer,
    //    always-forward recovery).
    let unsync = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline());
    let u = unsync.run(&trace, &[]);
    println!(
        "unsync pair:   IPC {:.3}  ({} cycles, +{:.2}% vs baseline)",
        u.ipc(),
        u.cycles,
        (u.cycles as f64 / base.core.last_commit_cycle as f64 - 1.0) * 100.0
    );
    assert!(u.correct());

    // 4. And the hardware price of each (Table II).
    let t2 = unsync::hwcost::table2();
    println!(
        "\nhardware: Reunion +{:.1}% area / +{:.1}% power; UnSync +{:.1}% area / +{:.1}% power",
        t2.reunion.area_overhead_pct.unwrap(),
        t2.reunion.power_overhead_pct.unwrap(),
        t2.unsync.area_overhead_pct.unwrap(),
        t2.unsync.power_overhead_pct.unwrap()
    );
}
