//! Design-space exploration: sweep the knobs the paper discusses —
//! Reunion's fingerprint interval (hardware *and* performance cost) and
//! UnSync's Communication-Buffer size — and print the trade-off frontier.
//!
//! ```sh
//! cargo run --release --example design_space_explorer
//! ```

use unsync::hwcost::CoreModel;
use unsync::prelude::*;

fn main() {
    let bench = Benchmark::Galgel;
    let insts = 50_000;
    let trace = WorkloadGen::new(bench, insts, 3).collect_trace();
    let mut stream = WorkloadGen::new(bench, insts, 3);
    let base = run_baseline(CoreConfig::table1(), &mut stream)
        .core
        .last_commit_cycle as f64;

    // Unlike Fig. 5 (which co-scales FI and comparison latency), this
    // sweep holds latency at 10 cycles and isolates the FI trade-off:
    // small FI ⇒ frequent synchronization; large FI ⇒ a CSB that grows
    // toward the size of the core.
    println!(
        "== Reunion: fingerprint interval sweep ({}) ==",
        bench.name()
    );
    println!(
        "{:>4} {:>8} {:>14} {:>14} {:>12}",
        "FI", "CSB", "runtime norm", "core area um2", "ROB occ"
    );
    for fi in [1u32, 5, 10, 20, 30, 50] {
        let mut s = WorkloadGen::new(bench, insts, 3);
        let mut hooks = ReunionHooks::new(ReunionConfig::for_fi(fi, 10));
        let r = run_stream(
            CoreConfig::table1(),
            &mut s,
            &mut hooks,
            WritePolicy::WriteThrough,
        );
        let hw = CoreModel::reunion_with_fi(fi);
        println!(
            "{:>4} {:>8} {:>14.3} {:>14.0} {:>12.1}",
            fi,
            fi + 7,
            r.core.last_commit_cycle as f64 / base,
            hw.core_area_um2(),
            r.core.avg_rob_occupancy()
        );
    }
    println!(
        "(area overhead grows with the CSB — at FI=50 the buffer alone is {:.0} um2,\n \
         the paper's \"91% of the logic core\" observation)",
        CoreModel::reunion_with_fi(50)
            .components
            .iter()
            .find(|c| c.name.starts_with("CHECK-stage buffer"))
            .unwrap()
            .area_um2
    );

    println!(
        "\n== UnSync: Communication-Buffer size sweep ({}) ==",
        bench.name()
    );
    println!(
        "{:>8} {:>8} {:>14} {:>14}",
        "bytes", "entries", "runtime norm", "CB area um2"
    );
    for bytes in [16usize, 64, 256, 1024, 2048, 4096] {
        let entries = UnsyncConfig::cb_entries_for_bytes(bytes);
        let pair = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::with_cb_entries(entries));
        let out = pair.run(&trace, &[]);
        let hw = CoreModel::unsync_with_cb(entries as u32);
        println!(
            "{:>8} {:>8} {:>14.4} {:>14.0}",
            bytes,
            entries,
            out.cycles as f64 / base,
            hw.cb_area_um2()
        );
    }
    println!(
        "(UnSync's sweet spot: a ~10-entry CB costs {:.0} um2 and already tracks baseline)",
        CoreModel::unsync().cb_area_um2()
    );
}
