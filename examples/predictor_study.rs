//! Branch-prediction study: replace the trace's annotated misprediction
//! rates with a live gshare predictor and compare front-end behaviour.
//!
//! The architecture comparisons elsewhere use annotations on purpose
//! (identical control flow for every configuration); this example shows
//! the engine driving a real predictor instead.
//!
//! ```sh
//! cargo run --release --example predictor_study
//! ```

use unsync::prelude::*;
use unsync::sim::Gshare;

fn main() {
    println!(
        "{:<14} {:>12} {:>12} {:>14} {:>12}",
        "benchmark", "annotated", "bimodal 4K", "gshare 16K", "IPC (bim.)"
    );
    for bench in [
        Benchmark::Bzip2,
        Benchmark::Parser,
        Benchmark::Stringsearch,
        Benchmark::Galgel,
        Benchmark::Dijkstra,
    ] {
        let insts = 60_000u64;
        let annotated_rate = bench.profile().mispredict_rate;
        let mut rates = Vec::new();
        let mut last_ipc = 0.0;
        for predictor in [Gshare::with_history(12, 0), Gshare::new(14)] {
            let mut mem = MemSystem::new(HierarchyConfig::table1(), 1, WritePolicy::WriteThrough);
            let mut engine = OooEngine::new(CoreConfig::table1(), 0).with_predictor(predictor);
            let mut hooks = BaselineHooks::default();
            let mut g = WorkloadGen::new(bench, insts, 5);
            let mut inst_count = 0u64;
            while let Some(inst) = g.next_inst() {
                engine.feed(&inst, &mut mem, &mut hooks);
                inst_count += 1;
            }
            let p = engine.predictor().expect("attached");
            rates.push(p.mispredict_rate());
            if rates.len() == 1 {
                last_ipc = inst_count as f64 / engine.stats().last_commit_cycle as f64;
            }
        }
        println!(
            "{:<14} {:>11.2}% {:>11.2}% {:>13.2}% {:>12.3}",
            bench.name(),
            annotated_rate * 100.0,
            rates[0] * 100.0,
            rates[1] * 100.0,
            last_ipc
        );
    }
    println!(
        "\nThe synthetic streams have per-site bias but no cross-branch correlation, so \
         a bimodal table approaches the intrinsic limit while gshare's global history \
         only injects noise — the classic predictable-vs-correlated distinction."
    );
}
