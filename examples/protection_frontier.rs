//! Selective-protection design space (§VIII: "possible customization at
//! the hardware … varied degrees of redundancy/resilience trade-offs").
//!
//! Enumerates all 2⁹ subsets of UnSync's detection placement — each
//! structure either gets its preferred mechanism (parity, or DMR for the
//! every-cycle elements) or is left bare — and prints the Pareto frontier
//! of (ROEC coverage) vs (area overhead). The full placement and the
//! empty one anchor the ends; the interesting points are the knees.
//!
//! ```sh
//! cargo run --release --example protection_frontier
//! ```

use unsync::fault::inject::{Coverage, DetectionMechanism, ALL_TARGETS};
use unsync::hwcost::{CoreModel, MechanismCost};

fn mech_cost(m: DetectionMechanism) -> MechanismCost {
    match m {
        DetectionMechanism::Parity => MechanismCost::Parity,
        DetectionMechanism::Dmr => MechanismCost::Dmr,
        DetectionMechanism::Secded => MechanismCost::Secded,
        DetectionMechanism::Fingerprint => MechanismCost::Parity, // n/a here
    }
}

fn main() {
    let base_area = CoreModel::mips_baseline().core_area_um2();
    let mut points = Vec::new();

    for mask in 0u32..(1 << ALL_TARGETS.len()) {
        let map: Vec<_> = ALL_TARGETS
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let protect = mask >> i & 1 == 1;
                (t, protect.then(|| Coverage::preferred_mechanism(t)))
            })
            .collect();
        let area: f64 = map
            .iter()
            .filter_map(|&(t, m)| m.map(|m| mech_cost(m).area_um2(t.bits())))
            .sum();
        let cov = Coverage::custom("candidate", map);
        points.push((cov.roec_fraction(), area / base_area * 100.0, mask));
    }

    // Pareto frontier: maximal coverage for minimal area.
    points.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let mut frontier: Vec<(f64, f64, u32)> = Vec::new();
    let mut best_cov = -1.0;
    for &(cov, area, mask) in &points {
        if cov > best_cov + 1e-12 {
            best_cov = cov;
            frontier.push((cov, area, mask));
        }
    }

    println!(
        "Selective-protection Pareto frontier ({} candidate placements):",
        points.len()
    );
    println!(
        "{:>10} {:>12}   protected structures",
        "ROEC %", "area ovh %"
    );
    for &(cov, area, mask) in &frontier {
        let names: Vec<&str> = ALL_TARGETS
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, t)| match t {
                unsync::fault::FaultTarget::RegisterFile => "RF",
                unsync::fault::FaultTarget::Pc => "PC",
                unsync::fault::FaultTarget::PipelineRegs => "PIPE",
                unsync::fault::FaultTarget::Rob => "ROB",
                unsync::fault::FaultTarget::IssueQueue => "IQ",
                unsync::fault::FaultTarget::Lsq => "LSQ",
                unsync::fault::FaultTarget::Tlb => "TLB",
                unsync::fault::FaultTarget::L1Data => "L1D",
                unsync::fault::FaultTarget::L1Tag => "L1T",
            })
            .collect();
        println!("{:>10.2} {:>12.3}   {}", cov * 100.0, area, names.join("+"));
    }
    println!(
        "\nThe L1 data array dominates the vulnerable bits, and parity on it is nearly \
         free — which is why UnSync's full placement costs so little; the expensive \
         marginal step is DMR on the every-cycle pipeline latches."
    );
}
