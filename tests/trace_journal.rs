//! The opt-in full trace journal (`UNSYNC_TRACE_JOURNAL`).
//!
//! This file is its own test binary, so setting the environment
//! variable here cannot leak into other test processes; the single
//! `#[test]` keeps the process-wide env write race-free, and the cap
//! is read once per process (OnceLock) exactly like production.

use unsync::core::{UnsyncConfig, UnsyncPolicy};
use unsync::exec::{episodes_from, RedundantDriver, TraceEventKind};
use unsync::mem::WritePolicy;
use unsync::prelude::*;
use unsync::sim::CoreConfig;

#[test]
fn journal_captures_the_full_stamped_sequence() {
    std::env::set_var("UNSYNC_TRACE_JOURNAL", "on");

    let t = WorkloadGen::new(Benchmark::Gzip, 4_000, 5).collect_trace();
    let fault = PairFault {
        at: 2_000,
        core: 1,
        site: FaultSite {
            target: FaultTarget::RegisterFile,
            bit_offset: 9,
        },
        kind: unsync::fault::FaultKind::Single,
    };
    let driver = RedundantDriver::new(CoreConfig::table1());
    let mut policy = UnsyncPolicy::new(
        "unsync_pair",
        UnsyncConfig::paper_baseline(),
        WritePolicy::WriteThrough,
        0,
    );
    let res = driver.run(&mut policy, &t, &[fault]);

    let journal = res.events.journal().expect("journal mode is on");
    assert_eq!(res.events.journal_dropped(), 0, "default cap is ample");

    // The journal holds the complete sequence: per-kind counts and sums
    // reconstruct the accumulators exactly, and the stamps are monotone.
    for kind in [
        TraceEventKind::Detection,
        TraceEventKind::RecoveryStart,
        TraceEventKind::RecoveryEnd,
        TraceEventKind::CbDrain,
    ] {
        let n = journal.iter().filter(|e| e.kind == kind).count() as u64;
        assert_eq!(n, res.events.count(kind), "{kind:?} count");
        let s: u64 = journal
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.value)
            .sum();
        assert_eq!(s, res.events.sum(kind), "{kind:?} sum");
    }
    assert!(journal.windows(2).all(|w| w[0].cycle <= w[1].cycle));

    // Replaying the journal through the offline pairing reproduces the
    // stream's inline episodes — the journal is a faithful record.
    assert_eq!(episodes_from(journal), res.events.episodes());
    assert_eq!(res.out.recoveries, 1);
    assert_eq!(res.events.episodes().len(), 1);
}
