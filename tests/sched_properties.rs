//! Property tests for the discrete-event scheduler
//! (`unsync_exec::sched`): random component schedules must never break
//! the queue's ordering contract.
//!
//! * Wake-ups pop in non-decreasing tick order — no component is ever
//!   run past another's earlier `next_tick` (the laggard rule);
//! * ties pop the lowest component index;
//! * the run's total tick count equals the sum of per-component ticks.

use proptest::prelude::*;
use unsync_exec::sched::{self, Component, EventQueue};

/// A component scripted as (start tick, steps, stride): wakes at
/// `start`, ticks `steps` times, advancing `stride + 1` ticks per wake
/// (strictly forward, as the scheduler contract requires). Every tick
/// is logged as `(tick, id)` into the shared context.
struct Scripted {
    id: usize,
    next: u64,
    left: u32,
    stride: u64,
}

impl Component for Scripted {
    type Ctx = Vec<(u64, usize)>;

    fn next_tick(&self) -> Option<u64> {
        (self.left > 0).then_some(self.next)
    }

    fn tick(&mut self, now: u64, log: &mut Vec<(u64, usize)>) {
        log.push((now, self.id));
        self.next = now + self.stride + 1;
        self.left -= 1;
    }
}

fn build(specs: &[(u64, u32, u64)]) -> Vec<Scripted> {
    specs
        .iter()
        .enumerate()
        .map(|(id, &(start, steps, stride))| Scripted {
            id,
            next: start % 1_000,
            left: steps % 64,
            stride: stride % 16,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn wakeups_are_globally_ordered_and_complete(
        specs in prop::collection::vec((any::<u64>(), any::<u32>(), any::<u64>()), 1..40)
    ) {
        let mut comps = build(&specs);
        let expected: u64 = comps.iter().map(|c| u64::from(c.left)).sum();
        let starts: Vec<Option<u64>> = comps.iter().map(|c| c.next_tick()).collect();
        let mut log = Vec::new();
        let total = sched::run(&mut comps, &mut log);

        // Total ticks == sum of per-component ticks; every component is
        // drained.
        prop_assert_eq!(total, expected);
        prop_assert_eq!(log.len() as u64, total);
        prop_assert!(comps.iter().all(|c| c.next_tick().is_none()));
        for (id, &(_, steps, _)) in specs.iter().enumerate() {
            let got = log.iter().filter(|&&(_, i)| i == id).count() as u64;
            prop_assert_eq!(got, u64::from(steps % 64), "component {} tick count", id);
        }

        // The laggard rule: wake-up ticks never decrease — a component
        // is never run past another runnable component's earlier tick.
        prop_assert!(
            log.windows(2).all(|w| w[0].0 <= w[1].0),
            "wake-ups must pop in non-decreasing tick order: {:?}",
            log
        );

        // Tie-break at the opening wave: all components sharing the
        // minimal start tick must run before anything else, in index
        // order (later ties can interleave with re-scheduled wake-ups,
        // so the opening wave is where the pure tie-break is visible).
        if let Some(first_tick) = starts.iter().flatten().min().copied() {
            let opening: Vec<usize> = (0..starts.len())
                .filter(|&i| starts[i] == Some(first_tick))
                .collect();
            let head: Vec<(u64, usize)> = log.iter().take(opening.len()).copied().collect();
            prop_assert!(
                head.iter().all(|&(t, _)| t == first_tick),
                "opening wave must stay at the minimal start tick: {:?}",
                head
            );
            let head_ids: Vec<usize> = head.iter().map(|&(_, i)| i).collect();
            prop_assert_eq!(head_ids, opening, "ties must pop lowest index first");
        }
    }

    #[test]
    fn queue_pops_in_tick_then_index_order(
        entries in prop::collection::vec((any::<u64>(), any::<u64>()), 1..100)
    ) {
        let mut q = EventQueue::new();
        let mut expected: Vec<(u64, usize)> = entries
            .iter()
            .map(|&(t, i)| (t % 10_000, (i % 64) as usize))
            .collect();
        for &(t, i) in &expected {
            q.schedule(t, i);
        }
        expected.sort();
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push(e);
        }
        prop_assert_eq!(got, expected, "pop order must be (tick, index) lexicographic");
        prop_assert!(q.is_empty());
    }
}

/// A run over zero components is a no-op, not a hang.
#[test]
fn empty_run_is_zero_ticks() {
    let mut comps: Vec<Scripted> = Vec::new();
    let mut log = Vec::new();
    assert_eq!(sched::run(&mut comps, &mut log), 0);
    assert!(log.is_empty());
}
