//! The paper's abstract, end to end: "UnSync reduces power consumption by
//! 34.5% and improves performance by up to 20% with 13.3% less area
//! overhead, when compared to Reunion, for the same level of reliability."

use unsync::hwcost;
use unsync::prelude::*;

const N: u64 = 100_000;
const SEED: u64 = 1;

fn overheads(bench: Benchmark) -> (f64, f64) {
    let t = WorkloadGen::new(bench, N, SEED).collect_trace();
    let mut s = WorkloadGen::new(bench, N, SEED);
    let base = run_baseline(CoreConfig::table1(), &mut s)
        .core
        .last_commit_cycle as f64;
    let r = ReunionPair::new(CoreConfig::table1(), ReunionConfig::paper_baseline()).run(&t, &[]);
    let u = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline()).run(&t, &[]);
    (r.cycles as f64 / base - 1.0, u.cycles as f64 / base - 1.0)
}

#[test]
fn unsync_beats_reunion_on_every_serializing_benchmark() {
    for bench in Benchmark::serializing_heavy() {
        let (r, u) = overheads(bench);
        assert!(
            r > 0.10,
            "{}: Reunion overhead {r} should exceed 10%",
            bench.name()
        );
        assert!(
            u < 0.03,
            "{}: UnSync overhead {u} should be negligible",
            bench.name()
        );
    }
}

#[test]
fn performance_improvement_reaches_double_digits() {
    // "improves performance by up to 20%": the largest per-benchmark gap
    // between Reunion and UnSync runtimes.
    let mut best = 0.0f64;
    for &bench in &[
        Benchmark::Galgel,
        Benchmark::Sha,
        Benchmark::Bitcount,
        Benchmark::Crc32,
    ] {
        let (r, u) = overheads(bench);
        let improvement = 1.0 - (1.0 + u) / (1.0 + r);
        best = best.max(improvement);
    }
    assert!(
        best > 0.10,
        "best UnSync-vs-Reunion improvement {best} < 10%"
    );
}

#[test]
fn area_and_power_savings_match_the_abstract() {
    let t2 = hwcost::table2();
    // "13.3% less area overhead": the paper compares core areas —
    // 115945/144005 − 1 ≈ −19.5% core, or the 13.32% figure via total
    // area ratios quoted in §VI-A1. Check both directions generously.
    let area_saving = 1.0 - t2.unsync.total_area_um2 / t2.reunion.total_area_um2;
    assert!(area_saving > 0.10, "area saving {area_saving}");
    // "34.5% lower power overhead": overhead 40.3% vs 74.8% ⇒ the
    // *overhead difference* is ≈34.5 percentage points.
    let dif = t2.reunion.power_overhead_pct.unwrap() - t2.unsync.power_overhead_pct.unwrap();
    assert!((dif - 34.5).abs() < 2.0, "power-overhead difference {dif}");
}

#[test]
fn same_reliability_larger_roec() {
    // "achieves same level of reliability, with a larger ROEC".
    let u = Coverage::unsync().roec_fraction();
    let r = Coverage::reunion().roec_fraction();
    assert!((u - 1.0).abs() < 1e-12, "UnSync covers everything");
    assert!(u > r);
}
