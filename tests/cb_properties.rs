//! Property tests over the Communication Buffer pair (§III-A,
//! `crates/core/src/cb.rs`): under *any* interleaving of the vocal and
//! mute cores' store streams, no entry is released to the protected L2
//! before both copies agree; and the always-forward recovery (step 5)
//! leaves the CB pair convergent no matter how far the cores had
//! drifted apart.

use proptest::prelude::*;
use unsync::prelude::*;
use unsync_core::GroupCb;

/// Large enough that no interleaving below ever fills a side — the pair
/// runner's "cores fed in step" contract is about stalls, not ordering,
/// and these properties target ordering.
const CAP: usize = 64;

fn mem() -> MemSystem {
    MemSystem::new(HierarchyConfig::table1(), 2, WritePolicy::WriteThrough)
}

/// Replays `picks` as an interleaving of two in-order streams of `n`
/// stores each: `true` advances the vocal core (0), `false` the mute
/// core (1); an exhausted side falls through to the other. Returns
/// `(cb, mem, ready_cycles)` where `ready_cycles[seq] = [vocal, mute]`
/// commit cycles.
#[allow(clippy::type_complexity)]
fn interleave(n: u64, picks: &[bool]) -> (PairedCb, MemSystem, Vec<[u64; 2]>) {
    let mut cb = PairedCb::new(CAP);
    let mut m = mem();
    let mut next = [0u64; 2];
    let mut cyc = [10u64, 10];
    let mut ready = vec![[0u64; 2]; n as usize];
    for step in 0..2 * n as usize {
        let vocal_first = picks.get(step).copied().unwrap_or(step % 2 == 0);
        let side = if vocal_first && next[0] < n {
            0
        } else if next[1] < n {
            1
        } else {
            0
        };
        let seq = next[side];
        cb.push(side, seq, 0x40 + seq, cyc[side], &mut m);
        ready[seq as usize][side] = cyc[side];
        next[side] += 1;
        // Uneven but deterministic commit pacing per side.
        cyc[side] += 1 + (seq * 7 + side as u64 * 3) % 9;
    }
    (cb, m, ready)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// §III-A: "the latest entry that has completed execution on both"
    /// drains — at every point of every interleaving, the number of
    /// entries released to L2 equals the number of *matched* store
    /// pairs, never more.
    #[test]
    fn entry_never_released_before_both_copies_agree(
        n in 1u64..32,
        picks in prop::collection::vec(any::<bool>(), 0..64),
    ) {
        let mut cb = PairedCb::new(CAP);
        let mut m = mem();
        let mut next = [0u64; 2];
        let mut cyc = [10u64, 10];
        let mut ready = vec![[0u64; 2]; n as usize];
        for step in 0..2 * n as usize {
            let vocal_first = picks.get(step).copied().unwrap_or(step % 2 == 0);
            let side = if vocal_first && next[0] < n {
                0
            } else if next[1] < n {
                1
            } else {
                0
            };
            let seq = next[side];
            let done = cb.push(side, seq, 0x40 + seq, cyc[side], &mut m);
            prop_assert_eq!(done, cyc[side], "no stalls below capacity");
            ready[seq as usize][side] = cyc[side];
            next[side] += 1;

            let matched = next[0].min(next[1]);
            prop_assert_eq!(
                cb.drained, matched,
                "L2 saw {} entries but only {} store pairs agree",
                cb.drained, matched
            );
            if next[side] <= matched {
                // This push completed a pair: its drain is gated by the
                // slower copy, so the pair must still occupy the CB at
                // the later of the two commit cycles.
                let gate = ready[seq as usize][0].max(ready[seq as usize][1]);
                prop_assert!(!cb.is_empty(gate), "seq {seq} left before cycle {gate}");
            }
            cyc[side] += 1 + (seq * 7 + side as u64 * 3) % 9;
        }
        prop_assert_eq!(cb.drained, n);
        prop_assert!(cb.is_empty(10_000_000), "all matched entries eventually drain");
    }

    /// RECOVERY step 5: after the error-free core's CB overwrites its
    /// partner's, both sides are identical (convergent), every surviving
    /// entry is matched, and exactly the good core's stores — no more,
    /// no fewer — reach the L2.
    #[test]
    fn always_forward_recovery_leaves_pair_convergent(
        n in 1u64..32,
        picks in prop::collection::vec(any::<bool>(), 0..64),
        good in 0usize..2,
    ) {
        let (mut cb, mut m, _) = interleave(n, &picks);
        cb.overwrite_from(good, 1_000_000, &mut m);
        // Both sides pushed all n stores in `interleave`, so recovery
        // must leave exactly n entries released — no duplicates.
        prop_assert_eq!(cb.drained, n);
        prop_assert_eq!(
            cb.occupancy(0, 1_000_000),
            cb.occupancy(1, 1_000_000),
            "sides diverge right after recovery"
        );
        prop_assert!(cb.is_empty(100_000_000), "recovered pair must drain dry");
    }

    /// Uncore strike on a resident CB entry (data array): a flipped
    /// line bit breaks the stored fingerprint, so when the partner's
    /// copy arrives the pair comparison *must* miscompare —
    /// `fingerprint_mismatches` fires and the corrupted pair is never
    /// silently drained to the L2.
    #[test]
    fn struck_cb_entry_is_detected_not_silently_drained(
        n in 1u64..16,
        victim in 0u64..16,
        side in 0usize..2,
        bit in 0u64..64,
    ) {
        let victim = victim % n;
        let mut cb = PairedCb::new(CAP);
        let mut m = mem();
        // The vocal core commits its whole stream first, so every
        // entry sits unmatched on side 0 when the strike lands.
        for seq in 0..n {
            cb.push(0, seq, 0x40 + seq, 10 + 3 * seq, &mut m);
        }
        let slot = if side == 0 { victim as usize } else { 0 };
        let drained_before = cb.drained;
        if side == 0 {
            prop_assert!(
                cb.corrupt_entry(0, slot, bit, 20),
                "strike on an occupied slot must hit"
            );
        } else {
            // Side 1 is empty pre-push: the strike lands between the
            // mute core's own pushes instead.
            prop_assert!(!cb.corrupt_entry(1, 0, bit, 20), "empty side masks");
        }
        for seq in 0..n {
            cb.push(1, seq, 0x40 + seq, 12 + 5 * seq, &mut m);
            if side == 1 && seq == victim {
                // Strike the mute core's freshest entry. It may already
                // be matched (drain scheduled but not complete) — the
                // residency rule says it is still strikeable.
                let occ = cb.occupancy(1, 12 + 5 * seq);
                if occ > 0 {
                    prop_assert!(cb.corrupt_fingerprint(1, occ - 1, bit, 12 + 5 * seq));
                }
            }
        }
        if side == 0 {
            // The victim pair miscompared instead of draining.
            prop_assert!(cb.fingerprint_mismatches >= 1, "flip must be caught");
            prop_assert_eq!(cb.drained, drained_before + n - 1);
            prop_assert!(
                !cb.is_empty(100_000_000),
                "corrupted pair must pend for recovery, not vanish"
            );
        } else {
            // A post-match fingerprint flip never un-drains the pair,
            // and a pre-match flip is caught; either way nothing
            // corrupted reaches the L2 silently (drains only ever
            // carry compare-verified lines).
            prop_assert!(cb.drained <= n);
            prop_assert!(cb.fingerprint_mismatches + cb.drained >= n);
        }
        // Recovery from the clean side still converges (§III step 5).
        cb.overwrite_from(side ^ 1, 1_000_000, &mut m);
        prop_assert_eq!(cb.drained, n, "recovery drains the clean stream");
        prop_assert!(cb.is_empty(100_000_000));
    }

    /// TMR equivalent: a struck replica in a `GroupCb(cap, 3)` is never
    /// outvoted *silently* — the group completion miscompares, counts a
    /// fingerprint mismatch, and withholds the drain.
    #[test]
    fn struck_group_replica_is_detected(
        n in 1u64..16,
        victim in 0u64..16,
        replica in 0usize..3,
        bit in 0u64..64,
    ) {
        let victim = victim % n;
        let mut cb = GroupCb::new(CAP, 3);
        let mut m = mem();
        // Replica `replica` commits first and takes the strike while
        // its entries are still unmatched.
        for seq in 0..n {
            cb.push(replica, seq, 0x40 + seq, 10 + 3 * seq, &mut m);
        }
        prop_assert!(cb.corrupt_entry(replica, victim as usize, bit, 20));
        for other in (0..3usize).filter(|&c| c != replica) {
            for seq in 0..n {
                cb.push(other, seq, 0x40 + seq, 15 + 7 * seq, &mut m);
            }
        }
        prop_assert_eq!(cb.drained, n - 1, "victim group must not drain");
        prop_assert!(cb.fingerprint_mismatches >= 1, "flip must miscompare");
    }

    /// Same recovery property under maximal drift: the good core ran
    /// `lead` stores ahead of the (erroneous) mute core when recovery
    /// struck. The bad side's state is discarded, the good side's
    /// unmatched tail drains, and the pair converges.
    #[test]
    fn recovery_converges_under_drift(
        n_good in 1u64..32,
        lead in 0u64..16,
        good in 0usize..2,
    ) {
        let bad = good ^ 1;
        let n_bad = n_good.saturating_sub(lead);
        let mut cb = PairedCb::new(CAP);
        let mut m = mem();
        for seq in 0..n_good {
            cb.push(good, seq, 0x40 + seq, 10 + 3 * seq, &mut m);
        }
        for seq in 0..n_bad {
            cb.push(bad, seq, 0x40 + seq, 12 + 5 * seq, &mut m);
        }
        prop_assert_eq!(cb.drained, n_bad, "only matched pairs drained pre-recovery");
        cb.overwrite_from(good, 1_000_000, &mut m);
        prop_assert_eq!(
            cb.drained, n_good,
            "recovery drains exactly the good core's stores"
        );
        prop_assert_eq!(cb.occupancy(good, 1_000_000), cb.occupancy(bad, 1_000_000));
        prop_assert!(cb.is_empty(100_000_000));
    }
}
