//! Determinism regression for the streaming campaign engine: the same
//! [`CampaignGrid`] must produce byte-identical normalized JSONL at
//! any worker count, and a run killed mid-grid must resume to the same
//! bytes an uninterrupted run produces. Alongside, a property test
//! that the job → SplitMix64 stream mapping never hands two jobs of a
//! grid the same stream.

use std::path::PathBuf;

use proptest::prelude::*;
use unsync_bench::campaign::run_collected;
use unsync_bench::{normalized_lines, CampaignEngine, CampaignGrid};
use unsync_fault::uncore::StrikePlan;
use unsync_mem::L2ContentionConfig;
use unsync_workloads::WorkloadSpec;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// A fast uncore strike grid: small traces, one strike per cell, the
/// three bracketing schemes.
fn strike_grid() -> CampaignGrid {
    CampaignGrid {
        name: "campaign_det".into(),
        inst_count: 120,
        seeds: vec![11, 12],
        workloads: vec![WorkloadSpec::parse("gzip").expect("static workload")],
        schemes: vec!["unsync_pair", "tmr_vote", "secded_only"],
        strikes: Some(StrikePlan::all_uncore(1, 240)),
        contention: Some(L2ContentionConfig::many_core()),
    }
}

/// A scratch path unique to this test process and `label`.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("unsync_campaign_det_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{label}.jsonl"))
}

/// Runs the engine on a fresh log and returns the normalized lines.
fn engine_lines(grid: &CampaignGrid, workers: usize, label: &str) -> Vec<String> {
    let path = scratch(label);
    let _ = std::fs::remove_file(&path);
    CampaignEngine::new(workers)
        .run_streaming(grid, &path)
        .expect("campaign run");
    let text = std::fs::read_to_string(&path).expect("read campaign log");
    let _ = std::fs::remove_file(&path);
    normalized_lines(&text)
}

#[test]
fn campaign_jsonl_is_byte_identical_across_worker_counts() {
    let grid = strike_grid();
    let reference = normalized_lines(&run_collected(&grid).join("\n"));
    assert_eq!(
        reference.len(),
        grid.len() + 1,
        "expected a header plus one record per job"
    );
    for workers in WORKER_COUNTS {
        let lines = engine_lines(&grid, workers, &format!("workers_{workers}"));
        assert_eq!(
            lines, reference,
            "engine at {workers} workers diverged from the sequential reference"
        );
    }
}

#[test]
fn campaign_resumes_killed_run_to_identical_bytes() {
    let grid = strike_grid();
    let path = scratch("kill_resume");
    let _ = std::fs::remove_file(&path);

    // The uninterrupted run is the oracle.
    CampaignEngine::new(2)
        .run_streaming(&grid, &path)
        .expect("uninterrupted campaign run");
    let full = std::fs::read_to_string(&path).expect("read campaign log");
    let reference = normalized_lines(&full);

    // "Kill" the run: keep the header and the first few records, then
    // a torn half-written line, as a mid-write SIGKILL would leave.
    let keep = 5;
    let prefix: Vec<&str> = full.lines().take(1 + keep).collect();
    let mut torn = prefix.join("\n");
    torn.push_str("\n{\"kind\":\"record\",\"row\":99,\"trunc");
    std::fs::write(&path, &torn).expect("write truncated log");

    let report = CampaignEngine::new(8)
        .run_streaming(&grid, &path)
        .expect("resumed campaign run");
    assert_eq!(
        report.jobs_skipped, keep,
        "resume must skip the kept records"
    );
    assert_eq!(
        report.jobs_run,
        grid.len() - keep,
        "resume must run exactly the missing jobs"
    );
    let resumed = std::fs::read_to_string(&path).expect("read resumed log");
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        normalized_lines(&resumed),
        reference,
        "resumed log diverged from the uninterrupted run"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every job of an arbitrary grid draws a distinct SplitMix64
    /// stream: no two cells of the cartesian product — across
    /// workloads, seeds, schemes, strike cells, and both job kinds —
    /// collide on `stream_seed`.
    #[test]
    fn job_stream_mapping_is_injective(
        inst_count in 50u64..5_000,
        raw_seeds in proptest::collection::vec(0u64..1_000_000, 1..4),
        n_schemes in 1usize..4,
        strikes in 0u64..3,
    ) {
        let mut seeds = raw_seeds;
        seeds.sort_unstable();
        seeds.dedup();
        let schemes: Vec<&'static str> =
            ["unsync_pair", "tmr_vote", "secded_only"][..n_schemes].to_vec();
        let grid = CampaignGrid {
            name: "campaign_prop".into(),
            inst_count,
            seeds,
            workloads: vec![
                WorkloadSpec::parse("gzip").expect("static workload"),
                WorkloadSpec::parse("qsort").expect("static workload"),
            ],
            schemes,
            strikes: (strikes > 0).then(|| StrikePlan::all_uncore(strikes, inst_count)),
            contention: None,
        };
        let jobs = grid.expand();
        prop_assert_eq!(jobs.len(), grid.len());
        let mut streams: Vec<u64> = jobs.iter().map(|j| j.stream_seed()).collect();
        streams.sort_unstable();
        let before = streams.len();
        streams.dedup();
        prop_assert_eq!(streams.len(), before, "two jobs drew the same stream");
    }
}
