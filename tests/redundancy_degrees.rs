//! Cross-crate checks of the configurability extensions: N-way groups,
//! multi-pair systems, and the energy model tied to measured runtimes.

use unsync::core::UnsyncSystem;
use unsync::prelude::*;

#[test]
fn redundancy_degree_trades_cycles_for_burst_tolerance() {
    let t = WorkloadGen::new(Benchmark::Gzip, 8_000, 33).collect_trace();
    // A burst striking two replicas at once.
    let burst = [
        PairFault {
            at: 3_000,
            core: 0,
            site: FaultSite {
                target: FaultTarget::RegisterFile,
                bit_offset: 70,
            },
            kind: unsync_fault::FaultKind::Single,
        },
        PairFault {
            at: 3_000,
            core: 1,
            site: FaultSite {
                target: FaultTarget::Lsq,
                bit_offset: 7,
            },
            kind: unsync_fault::FaultKind::Single,
        },
    ];
    let g2 = UnsyncGroup::new(CoreConfig::table1(), UnsyncConfig::paper_baseline(), 2);
    let g3 = UnsyncGroup::new(CoreConfig::table1(), UnsyncConfig::paper_baseline(), 3);
    let o2 = g2.run(&t, &burst);
    let o3 = g3.run(&t, &burst);
    assert!(
        !o2.correct(),
        "2-way cannot source recovery for a double strike"
    );
    assert!(o3.correct(), "3-way has a clean replica: {o3:?}");
    // Error-free: wider groups are never faster.
    let f2 = g2.run(&t, &[]);
    let f3 = g3.run(&t, &[]);
    assert!(f3.cycles >= f2.cycles);
    assert!(f2.correct() && f3.correct());
}

#[test]
fn system_and_pair_agree_for_one_pair() {
    let t = WorkloadGen::new(Benchmark::Fft, 8_000, 34).collect_trace();
    let sys = UnsyncSystem::new(CoreConfig::table1(), UnsyncConfig::paper_baseline());
    let sys_out = sys.run(std::slice::from_ref(&t));
    let pair_out =
        UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline()).run(&t, &[]);
    assert_eq!(sys_out.pairs[0].cycles, pair_out.cycles);
    assert_eq!(sys_out.pairs[0].cb_drained, pair_out.cb_drained);
}

#[test]
fn energy_reflects_measured_runtimes() {
    let t = WorkloadGen::new(Benchmark::Galgel, 20_000, 35).collect_trace();
    let mut s = WorkloadGen::new(Benchmark::Galgel, 20_000, 35);
    let base_cycles = run_baseline(CoreConfig::table1(), &mut s)
        .core
        .last_commit_cycle;
    let u_cycles = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline())
        .run(&t, &[])
        .cycles;
    let r_cycles = ReunionPair::new(CoreConfig::table1(), ReunionConfig::paper_baseline())
        .run(&t, &[])
        .cycles;
    let clock = 2e9;
    let base = EnergyReport::new(&CoreModel::mips_baseline(), 1, base_cycles, 20_000, clock);
    let unsync = EnergyReport::new(&CoreModel::unsync(), 2, u_cycles, 20_000, clock);
    let reunion = EnergyReport::new(&CoreModel::reunion(), 2, r_cycles, 20_000, clock);
    // Redundancy costs energy; UnSync's pair undercuts Reunion's on both
    // energy and EDP (the paper's power claim compounded with runtime).
    assert!(unsync.energy_j > base.energy_j);
    assert!(unsync.energy_j < reunion.energy_j);
    assert!(unsync.edp < reunion.edp);
}

#[test]
fn recovery_mode_ablation_is_correct_under_bursts() {
    let t = WorkloadGen::new(Benchmark::Qsort, 10_000, 36).collect_trace();
    let faults: Vec<PairFault> = (0..6)
        .map(|i| PairFault {
            at: 1_000 + i * 1_400,
            core: (i % 2) as usize,
            site: FaultSite {
                target: FaultTarget::Rob,
                bit_offset: i,
            },
            kind: unsync_fault::FaultKind::Single,
        })
        .collect();
    for mode in [
        unsync::core::RecoveryMode::CopyL1,
        unsync::core::RecoveryMode::InvalidateOnly,
    ] {
        let cfg = UnsyncConfig {
            recovery_mode: mode,
            ..UnsyncConfig::paper_baseline()
        };
        let out = UnsyncPair::new(CoreConfig::table1(), cfg).run(&t, &faults);
        assert_eq!(out.recoveries, 6, "{mode:?}");
        assert!(out.correct(), "{mode:?}: {out:?}");
    }
}
