//! Property tests over the TMR voting scheme: majority voting must
//! absorb *every* single-replica fault — any target, any bit, any
//! strike point, any replica — by outvoting and repairing the struck
//! replica in place, with zero rollbacks and a golden-identical final
//! memory image. Two replicas struck identically outvote the clean one:
//! detected (the schedule is known to the checker) but uncorrectable,
//! and counted as such.

use proptest::prelude::*;
use unsync::prelude::*;

fn arb_target() -> impl Strategy<Value = FaultTarget> {
    prop::sample::select(unsync::fault::inject::ALL_TARGETS.to_vec())
}

fn arb_bench() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn tmr_outvotes_any_single_fault_without_rollback(
        bench in arb_bench(),
        target in arb_target(),
        bit in any::<u64>(),
        at in 50u64..1_950,
        core in 0usize..3,
        seed in 1u64..50,
    ) {
        let t = WorkloadGen::new(bench, 2_000, seed).collect_trace();
        let fault = PairFault {
            at,
            core,
            site: FaultSite { target, bit_offset: bit % target.bits() },
            kind: unsync_fault::FaultKind::Single,
        };
        let out = TmrTriple::new(CoreConfig::table1()).run(&t, &[fault]);
        prop_assert_eq!(out.rollbacks, 0, "TMR never rolls back: {:?}", out);
        prop_assert!(out.corrections >= 1, "{:?} -> {:?}", fault, out);
        prop_assert_eq!(out.uncorrectable_votes, 0);
        prop_assert!(out.correct(), "{:?} -> {:?}", fault, out);
        prop_assert_eq!(out.core.committed, 2_000);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn two_agreeing_strikes_defeat_the_vote_but_are_counted(
        bench in arb_bench(),
        target in arb_target(),
        bit in any::<u64>(),
        at in 50u64..1_950,
        seed in 1u64..50,
    ) {
        let t = WorkloadGen::new(bench, 2_000, seed).collect_trace();
        // The same site struck on two replicas at the same instruction:
        // identical corruption forms a (wrong) majority.
        let site = FaultSite { target, bit_offset: bit % target.bits() };
        let faults: Vec<PairFault> = (0..2)
            .map(|core| PairFault {
                at,
                core,
                site,
                kind: unsync_fault::FaultKind::Single,
            })
            .collect();
        let out = TmrTriple::new(CoreConfig::table1()).run(&t, &faults);
        prop_assert_eq!(out.rollbacks, 0);
        prop_assert_eq!(out.corrections, 0, "{:?}", out);
        prop_assert!(out.core.detections >= 1, "{:?}", out);
        prop_assert!(out.uncorrectable_votes >= 1, "{:?}", out);
        prop_assert!(!out.correct(), "an outvoted clean replica cannot be correct: {:?}", out);
    }
}
