//! Property tests over the fault/recovery machinery: UnSync must recover
//! *every* single fault, anywhere, on any workload — the §VI-D coverage
//! claim as an executable property.

use proptest::prelude::*;
use unsync::prelude::*;

fn arb_target() -> impl Strategy<Value = FaultTarget> {
    prop::sample::select(unsync::fault::inject::ALL_TARGETS.to_vec())
}

fn arb_bench() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::all().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn unsync_recovers_any_single_fault(
        bench in arb_bench(),
        target in arb_target(),
        bit in any::<u64>(),
        at in 100u64..4_900,
        core in 0usize..2,
        seed in 1u64..50,
    ) {
        let t = WorkloadGen::new(bench, 5_000, seed).collect_trace();
        let fault = PairFault {
            at,
            core,
            site: FaultSite { target, bit_offset: bit % target.bits() }, kind: unsync_fault::FaultKind::Single };
        let out = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline())
            .run(&t, &[fault]);
        prop_assert_eq!(out.detections, 1);
        prop_assert_eq!(out.recoveries, 1);
        prop_assert!(out.correct(), "{:?} -> {:?}", fault, out);
        prop_assert_eq!(out.committed, 5_000);
    }

    #[test]
    fn reunion_recovers_in_roec_faults(
        bench in arb_bench(),
        bit in any::<u64>(),
        at in 100u64..4_900,
        core in 0usize..2,
        seed in 1u64..50,
    ) {
        // Restrict to structures inside Reunion's ROEC: these must always
        // be caught by the fingerprint and repaired by rollback.
        let targets = [
            FaultTarget::Pc,
            FaultTarget::PipelineRegs,
            FaultTarget::Rob,
            FaultTarget::IssueQueue,
            FaultTarget::Lsq,
        ];
        let target = targets[(bit % targets.len() as u64) as usize];
        let t = WorkloadGen::new(bench, 5_000, seed).collect_trace();
        let fault = PairFault {
            at,
            core,
            site: FaultSite { target, bit_offset: bit % target.bits() }, kind: unsync_fault::FaultKind::Single };
        let out = ReunionPair::new(CoreConfig::table1(), ReunionConfig::paper_baseline())
            .run(&t, &[fault]);
        prop_assert!(out.correct(), "{:?} -> {:?}", fault, out);
    }

    #[test]
    fn unsync_recovers_fault_bursts(
        seed in 1u64..30,
        n_faults in 2usize..6,
    ) {
        let t = WorkloadGen::new(Benchmark::Gzip, 6_000, seed).collect_trace();
        let faults: Vec<PairFault> = (0..n_faults as u64)
            .map(|i| {
                let mut f = PairFault::plan(seed ^ 0x99, i);
                f.at = 500 + i * 5_000 / n_faults as u64;
                f
            })
            .collect();
        let out = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline())
            .run(&t, &faults);
        prop_assert_eq!(out.recoveries as usize, n_faults);
        prop_assert!(out.correct(), "{:?}", out);
    }
}
