//! Properties and golden pins for the banked shared-L2 contention
//! model (`unsync_mem::L2Contention`):
//!
//! * bank-conflict stalls are monotone in request density — packing the
//!   same requests closer together never reduces total stall;
//! * MSHR occupancy never exceeds the configured limit;
//! * the zero-contention configuration reproduces the flat (pre-L2)
//!   model cycle-for-cycle, which is what keeps every pre-existing
//!   golden snapshot byte-identical.

use proptest::prelude::*;
use unsync_core::{UnsyncConfig, UnsyncPolicy, UnsyncSystem};
use unsync_exec::RedundantDriver;
use unsync_mem::{HierarchyConfig, L2Contention, L2ContentionConfig, MemSystem, WritePolicy};
use unsync_sim::CoreConfig;
use unsync_workloads::{Benchmark, WorkloadGen};

fn policies(lanes: usize) -> Vec<UnsyncPolicy> {
    (0..lanes)
        .map(|p| {
            UnsyncPolicy::new(
                "l2c_test",
                UnsyncConfig::paper_baseline(),
                WritePolicy::WriteThrough,
                2 * p,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Density monotonicity: the same request sequence issued with
    /// smaller inter-arrival gaps can only stall more in total —
    /// shrinking every gap moves requests into (or deeper into) their
    /// banks' busy windows.
    #[test]
    fn stalls_are_monotone_in_request_density(
        lines in prop::collection::vec(any::<u64>(), 1..120),
        banks in 1u32..8,
        beats in 0u32..12,
        gap in 0u64..20,
    ) {
        let cfg = L2ContentionConfig { banks, bank_busy_beats: beats, mshrs: 20 };
        let stall_at = |g: u64| {
            let mut c = L2Contention::new(cfg);
            let mut cycle = 0u64;
            for &line in &lines {
                c.access(0, line % 64, cycle);
                cycle += g;
            }
            c.stall_cycles
        };
        let dense = stall_at(gap);
        let sparse = stall_at(gap + 1);
        prop_assert!(
            dense >= sparse,
            "denser issue must not stall less: gap {} → {}, gap {} → {}",
            gap, dense, gap + 1, sparse
        );
    }

    /// The shared-L2 MSHR file never tracks more outstanding misses
    /// than the configured capacity, no matter the access pattern.
    #[test]
    fn mshr_occupancy_never_exceeds_limit(
        addrs in prop::collection::vec(any::<u64>(), 1..200),
        mshrs in 1u32..6,
    ) {
        let mut mem = MemSystem::new(HierarchyConfig::table1(), 2, WritePolicy::WriteThrough);
        mem.enable_l2_contention(L2ContentionConfig { banks: 4, bank_busy_beats: 2, mshrs });
        let mut cycle = 0u64;
        let mut saw_pressure = 0usize;
        for &a in &addrs {
            // A sparse stride so most accesses miss the L2 and allocate;
            // back-to-back issue keeps many misses in flight at once.
            let addr = (a % 4_096) * 8_192;
            let _ = mem.load(0, addr, cycle);
            cycle += 1;
            let outstanding = mem.l2_mshr_outstanding(cycle);
            saw_pressure = saw_pressure.max(outstanding);
            prop_assert!(
                outstanding <= mshrs as usize,
                "MSHR occupancy {} exceeded the limit of {}",
                outstanding, mshrs
            );
        }
        // The property must not hold vacuously: with misses issued every
        // cycle against a 400-cycle DRAM, the file does fill up.
        if addrs.len() > mshrs as usize * 4 {
            prop_assert!(saw_pressure >= 1, "expected some outstanding misses");
        }
    }
}

#[test]
fn zero_contention_config_reproduces_the_flat_model_exactly() {
    // Enabling the model with zero bank occupancy and the Table I MSHR
    // count must be cycle-identical to never enabling it: same lane
    // results (counters, events, memory) and same L2 statistics.
    let driver_flat = RedundantDriver::new(CoreConfig::table1());
    let driver_zero = RedundantDriver::new(CoreConfig::table1())
        .with_l2_contention(L2ContentionConfig::zero_contention());
    for lanes in [1usize, 4] {
        let traces: Vec<_> = (0..lanes)
            .map(|p| WorkloadGen::new(Benchmark::Qsort, 900, 13 + p as u64).collect_trace())
            .collect();
        let (flat, flat_mem) = driver_flat.run_system(&mut policies(lanes), &traces);
        let (zero, zero_mem) = driver_zero.run_system(&mut policies(lanes), &traces);
        for (p, (f, z)) in flat.iter().zip(zero.iter()).enumerate() {
            assert_eq!(f.out, z.out, "lane {p} of {lanes}: outcome counters");
            assert_eq!(f.events, z.events, "lane {p} of {lanes}: event stream");
            assert_eq!(f.memory, z.memory, "lane {p} of {lanes}: memory image");
        }
        assert_eq!(
            flat_mem.l2_stats().miss_rate(),
            zero_mem.l2_stats().miss_rate(),
            "{lanes} lanes: L2 miss rate"
        );
        let c = zero_mem.l2_contention().expect("model enabled");
        assert_eq!(c.conflicts, 0, "zero-occupancy banks never conflict");
        assert_eq!(c.stall_cycles, 0);
        assert!(c.requests > 0, "traffic must actually route through banks");
    }
}

#[test]
fn contention_slows_the_system_down_and_emits_events() {
    // A heavily-serialized L2 (one bank, long occupancy) must cost
    // cycles relative to the flat model and surface cycle-stamped
    // L2Contention events in the lane streams.
    use unsync_exec::TraceEventKind;
    let traces: Vec<_> = (0..4usize)
        .map(|p| {
            WorkloadGen::new_at(
                Benchmark::Gzip,
                600,
                7 + p as u64,
                0x1000_0000 + p as u64 * 0x0100_0000,
            )
            .collect_trace()
        })
        .collect();
    let flat = RedundantDriver::new(CoreConfig::table1());
    let slow = RedundantDriver::new(CoreConfig::table1()).with_l2_contention(L2ContentionConfig {
        banks: 1,
        bank_busy_beats: 16,
        mshrs: 20,
    });
    let (flat_res, _) = flat.run_system(&mut policies(4), &traces);
    let (slow_res, slow_mem) = slow.run_system(&mut policies(4), &traces);
    let flat_makespan = flat_res.iter().map(|r| r.out.cycles).max().unwrap();
    let slow_makespan = slow_res.iter().map(|r| r.out.cycles).max().unwrap();
    assert!(
        slow_makespan > flat_makespan,
        "a serialized L2 must cost cycles: {slow_makespan} vs {flat_makespan}"
    );
    let c = slow_mem.l2_contention().expect("model enabled");
    assert!(c.conflicts > 0, "one bank must conflict");
    let stamped: u64 = slow_res
        .iter()
        .map(|r| r.events.sum(TraceEventKind::L2Contention))
        .sum();
    assert_eq!(
        stamped, c.stall_cycles,
        "every bank-stall cycle must be attributed to some lane's event stream"
    );
    assert!(
        slow_res
            .iter()
            .any(|r| r.events.count(TraceEventKind::L2Contention) > 0),
        "conflict events must reach the lane streams"
    );
}

#[test]
fn unsync_system_goldens_are_untouched_by_the_model_existing() {
    // The contention model is opt-in: a plain UnsyncSystem run (no
    // contention configured) must behave exactly as before the model
    // existed. The committed goldens under tests/golden/ pin this at
    // the JSONL level; this pins the in-process outcome shape.
    let t = WorkloadGen::new(Benchmark::Gzip, 1_000, 3).collect_trace();
    let sys = UnsyncSystem::new(CoreConfig::table1(), UnsyncConfig::paper_baseline());
    let out = sys.run(std::slice::from_ref(&t));
    assert_eq!(out.pairs[0].core.committed, 1_000);
    assert!(out.pairs[0].core.correct());
}
