//! Property tests over cycle-scheduled uncore fault injection
//! (`RedundantDriver::run_system_with_uncore_faults`) and the ROEC 2.0
//! campaign built on it:
//!
//! * a zero-strike campaign run is byte-identical to `run_system` —
//!   the injection path costs nothing when unused;
//! * every classified strike carries exactly one of the four outcome
//!   labels, and the label round-trips through its string form;
//! * `masked` strikes left the committed memory image byte-identical
//!   to the golden run, `sdc` strikes provably diverged;
//! * the campaign is bit-identical across worker counts and reruns;
//! * mixed core + uncore schedules deliver in cycle order (the
//!   uncore-before-core contract is a `debug_assert` in the driver, so
//!   this binary exercising it under `cargo test` is the enforcement).

use unsync_bench::roec_uncore::{run_campaign, RoecUncoreConfig};
use unsync_bench::Runner;
use unsync_core::{UnsyncConfig, UnsyncPolicy};
use unsync_exec::RedundantDriver;
use unsync_fault::roec::{StrikeOutcome, ALL_OUTCOMES};
use unsync_fault::uncore::{UncoreStrike, UncoreTarget};
use unsync_fault::{FaultKind, FaultSite, FaultTarget, PairFault};
use unsync_isa::TraceProgram;
use unsync_mem::WritePolicy;
use unsync_sim::CoreConfig;
use unsync_workloads::{Benchmark, WorkloadGen};

fn traces(lanes: usize, insts: u64, seed: u64) -> Vec<TraceProgram> {
    (0..lanes)
        .map(|p| WorkloadGen::new(Benchmark::Gzip, insts, seed + p as u64).collect_trace())
        .collect()
}

fn policies(lanes: usize) -> Vec<UnsyncPolicy> {
    (0..lanes)
        .map(|p| {
            UnsyncPolicy::new(
                "uncore_faults_test",
                UnsyncConfig::paper_baseline(),
                WritePolicy::WriteThrough,
                2 * p,
            )
        })
        .collect()
}

#[test]
fn zero_strike_run_is_byte_identical_to_run_system() {
    let driver = RedundantDriver::new(CoreConfig::table1());
    let ts = traces(3, 500, 7);
    let (plain, plain_mem) = driver.run_system(&mut policies(3), &ts);
    let (with, with_mem) = driver.run_system_with_uncore_faults(&mut policies(3), &ts, &[], &[]);
    assert_eq!(plain.len(), with.len());
    for (p, (a, b)) in plain.iter().zip(with.iter()).enumerate() {
        assert_eq!(a.out, b.out, "lane {p} outcome counters");
        assert_eq!(a.events, b.events, "lane {p} event stream");
        assert_eq!(a.memory, b.memory, "lane {p} memory image");
    }
    assert_eq!(
        plain_mem.l2_stats().miss_rate(),
        with_mem.l2_stats().miss_rate(),
        "shared L2 statistics"
    );
    // The fault path *does* force the journal on — that is its one
    // observable difference, and it is excluded from equality above.
    assert!(with[0].events.journal().is_some());
}

#[test]
fn every_strike_gets_exactly_one_of_the_four_labels() {
    let cfg = RoecUncoreConfig::smoke(23);
    let records = run_campaign(&cfg, &Runner::new(2));
    assert!(!records.is_empty());
    for r in &records {
        assert!(
            ALL_OUTCOMES.contains(&r.outcome),
            "unknown outcome {:?}",
            r.outcome
        );
        assert_eq!(
            StrikeOutcome::from_label(r.outcome.label()),
            Some(r.outcome),
            "label must round-trip"
        );
    }
}

#[test]
fn masked_means_clean_memory_and_sdc_means_diverged() {
    let cfg = RoecUncoreConfig::smoke(5);
    for r in run_campaign(&cfg, &Runner::new(2)) {
        match r.outcome {
            StrikeOutcome::Masked => {
                assert!(r.memory_matches, "masked strike corrupted memory: {r:?}")
            }
            StrikeOutcome::Sdc => {
                assert!(!r.memory_matches, "SDC strike left memory clean: {r:?}")
            }
            _ => {}
        }
    }
}

#[test]
fn campaign_is_deterministic_across_worker_counts_and_reruns() {
    let cfg = RoecUncoreConfig::smoke(11);
    let one = run_campaign(&cfg, &Runner::new(1));
    let two = run_campaign(&cfg, &Runner::new(2));
    let eight = run_campaign(&cfg, &Runner::new(8));
    assert_eq!(one, two, "1 vs 2 workers");
    assert_eq!(one, eight, "1 vs 8 workers");
    let rerun = run_campaign(&cfg, &Runner::new(2));
    assert_eq!(two, rerun, "same-seed rerun");
}

/// Mixed schedule: an uncore strike *and* a core fault on the same
/// lane. The driver's delivery contract (uncore strikes drain at the
/// tick boundary before the instruction; delivery cycles advance
/// monotonically) is pinned by `debug_assert`s in `LaneRunner::tick`,
/// so this test running under `cargo test` (debug assertions on) is
/// what enforces it. The core fault must still be detected and
/// recovered exactly as in a pure core-fault campaign.
#[test]
fn mixed_core_and_uncore_schedules_deliver_in_cycle_order() {
    let driver = RedundantDriver::new(CoreConfig::table1());
    let ts = traces(1, 600, 3);
    let strike = UncoreStrike {
        cycle: 40,
        lane: 0,
        site: unsync_fault::uncore::UncoreSite::plan_in(UncoreTarget::L2Data, 9, 1),
        kind: FaultKind::Single,
        directed: false,
    };
    let fault = PairFault {
        at: 300,
        core: 0,
        site: FaultSite {
            target: FaultTarget::RegisterFile,
            bit_offset: 17,
        },
        kind: FaultKind::Single,
    };
    let (results, _) = driver.run_system_with_uncore_faults(
        &mut policies(1),
        &ts,
        &[vec![fault]],
        &[vec![strike]],
    );
    let r = &results[0];
    assert_eq!(r.out.recoveries, 1, "core fault must still recover");
    assert!(r.out.detections >= 1, "core fault must still be detected");
    assert!(
        r.out.correct(),
        "mixed schedule must stay recoverable: {:?}",
        r.out
    );
    // The journal records both deliveries, cycle-stamped.
    let journal = r.events.journal().expect("journal forced on");
    assert!(journal.windows(2).all(|w| w[0].cycle <= w[1].cycle));
}
