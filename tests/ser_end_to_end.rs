//! End-to-end validation of the §VI-C methodology: the analytic
//! projection (error-free runtime + rate × per-event cost) must agree
//! with a run in which the *actual* fault pattern for that rate is
//! injected.

use unsync::prelude::*;

#[test]
fn injected_rate_matches_analytic_projection() {
    let insts = 60_000u64;
    let t = WorkloadGen::new(Benchmark::Gzip, insts, 4).collect_trace();
    let pair = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline());

    // Error-free runtime and measured per-event cost.
    let t0 = pair.run(&t, &[]).cycles as f64;
    let k = 8u64;
    let probe: Vec<PairFault> = (0..k)
        .map(|i| PairFault {
            at: (i + 1) * insts / (k + 1),
            core: (i % 2) as usize,
            site: FaultSite {
                target: FaultTarget::Rob,
                bit_offset: 3 + i,
            },
            kind: unsync_fault::FaultKind::Single,
        })
        .collect();
    let per_event = (pair.run(&t, &probe).cycles as f64 - t0) / k as f64;

    // A high (still sub-break-even scale) rate so faults actually land.
    let rate = SerRate::per_instruction(2e-4);
    let faults = PairFault::plan_for_rate(rate, 99, insts);
    assert!(
        faults.len() >= 5,
        "need a meaningful number of arrivals, got {}",
        faults.len()
    );
    let injected = pair.run(&t, &faults);
    assert!(injected.correct(), "{injected:?}");
    assert_eq!(injected.recoveries, faults.len() as u64);

    let projected = t0 + faults.len() as f64 * per_event;
    let measured = injected.cycles as f64;
    let rel_err = (measured - projected).abs() / projected;
    assert!(
        rel_err < 0.15,
        "projection {projected:.0} vs measured {measured:.0} (rel err {rel_err:.3})"
    );
}

#[test]
fn physical_rates_produce_no_arrivals_at_simulable_horizons() {
    // The flat region of §VI-C, concretely: at the 90 nm rate the first
    // arrival is ~10^16 instructions away.
    let faults = PairFault::plan_for_rate(SerRate::NM90, 1, 10_000_000);
    assert!(faults.is_empty());
    let faults7 = PairFault::plan_for_rate(SerRate::per_instruction(1e-7), 1, 100_000);
    assert!(faults7.len() <= 1, "{}", faults7.len());
}

#[test]
fn arrival_counts_scale_with_rate() {
    let horizon = 200_000u64;
    let lo = PairFault::plan_for_rate(SerRate::per_instruction(1e-4), 7, horizon).len();
    let hi = PairFault::plan_for_rate(SerRate::per_instruction(1e-3), 7, horizon).len();
    assert!(hi > 5 * lo, "hi {hi} vs lo {lo}");
    // Roughly rate × horizon.
    assert!((hi as f64 - 200.0).abs() < 60.0, "{hi}");
}
