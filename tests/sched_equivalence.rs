//! Differential test: the discrete-event scheduler behind
//! `RedundantDriver::run_system` against the historical laggard loop
//! (`run_system_reference`, a linear `min_by_key` scan kept as the
//! oracle). Same traces, same seeds → byte-identical per-lane results:
//! outcome counters, trace-event streams, and final committed memory
//! images, plus identical shared-L2 statistics. This is the contract
//! that let the scheduler land without re-blessing a single golden
//! snapshot.

use unsync_core::{UnsyncConfig, UnsyncPolicy};
use unsync_exec::{RedundantDriver, RunResult};
use unsync_isa::TraceProgram;
use unsync_mem::{L2ContentionConfig, MemSystem, WritePolicy};
use unsync_sim::CoreConfig;
use unsync_workloads::{Benchmark, WorkloadGen};

/// Mixed workloads with lane-varying seeds: fast and slow lanes, so the
/// scheduler's pop order is exercised well beyond round-robin.
fn traces(lanes: usize, insts: u64, seed: u64) -> Vec<TraceProgram> {
    let mix = [
        Benchmark::Gzip,
        Benchmark::Qsort,
        Benchmark::Sha,
        Benchmark::Mcf,
    ];
    (0..lanes)
        .map(|p| WorkloadGen::new(mix[p % mix.len()], insts, seed + p as u64).collect_trace())
        .collect()
}

fn policies(lanes: usize) -> Vec<UnsyncPolicy> {
    (0..lanes)
        .map(|p| {
            UnsyncPolicy::new(
                "sched_equiv",
                UnsyncConfig::paper_baseline(),
                WritePolicy::WriteThrough,
                2 * p,
            )
        })
        .collect()
}

/// Asserts full equality of two system runs: per-lane results (counters,
/// event streams, memory images) and the shared-L2 statistics.
fn assert_equal(
    label: &str,
    (new, new_mem): &(Vec<RunResult>, MemSystem),
    (old, old_mem): &(Vec<RunResult>, MemSystem),
) {
    assert_eq!(new.len(), old.len(), "{label}: lane count");
    for (p, (n, o)) in new.iter().zip(old.iter()).enumerate() {
        assert_eq!(n.out, o.out, "{label}: lane {p} outcome counters");
        assert_eq!(n.events, o.events, "{label}: lane {p} event stream");
        assert_eq!(n.memory, o.memory, "{label}: lane {p} memory image");
    }
    assert_eq!(
        new_mem.l2_stats().miss_rate(),
        old_mem.l2_stats().miss_rate(),
        "{label}: L2 miss rate"
    );
    assert_eq!(
        new_mem
            .l2_contention()
            .map(|c| (c.conflicts, c.stall_cycles, c.requests)),
        old_mem
            .l2_contention()
            .map(|c| (c.conflicts, c.stall_cycles, c.requests)),
        "{label}: L2 contention statistics"
    );
}

#[test]
fn event_scheduler_matches_laggard_loop_at_2_8_and_16_lanes() {
    let driver = RedundantDriver::new(CoreConfig::table1());
    for lanes in [2usize, 8, 16] {
        let ts = traces(lanes, 800, 31);
        let new = driver.run_system(&mut policies(lanes), &ts);
        let old = driver.run_system_reference(&mut policies(lanes), &ts);
        assert!(
            new.0.iter().all(|r| r.out.committed == 800),
            "{lanes} lanes: every lane must finish"
        );
        assert_equal(&format!("{lanes} lanes, flat L2"), &new, &old);
    }
}

#[test]
fn event_scheduler_matches_laggard_loop_under_l2_contention() {
    // Contention stalls perturb lane clocks, so the pop order itself
    // depends on the contention model — both loops must still agree.
    let driver = RedundantDriver::new(CoreConfig::table1())
        .with_l2_contention(L2ContentionConfig::many_core());
    for lanes in [2usize, 8] {
        let ts = traces(lanes, 600, 47);
        let new = driver.run_system(&mut policies(lanes), &ts);
        let old = driver.run_system_reference(&mut policies(lanes), &ts);
        assert_equal(&format!("{lanes} lanes, contended L2"), &new, &old);
    }
}

#[test]
fn event_scheduler_handles_unequal_trace_lengths() {
    // Short lanes retire from the queue early; the reference scan just
    // skips them. Both must agree on everything that remains.
    let driver = RedundantDriver::new(CoreConfig::table1());
    let ts = vec![
        WorkloadGen::new(Benchmark::Sha, 300, 3).collect_trace(),
        WorkloadGen::new(Benchmark::Gzip, 1_200, 4).collect_trace(),
        WorkloadGen::new(Benchmark::Mcf, 700, 5).collect_trace(),
    ];
    let new = driver.run_system(&mut policies(3), &ts);
    let old = driver.run_system_reference(&mut policies(3), &ts);
    assert_eq!(new.0[0].out.committed, 300);
    assert_eq!(new.0[1].out.committed, 1_200);
    assert_equal("unequal lanes", &new, &old);
}

#[test]
fn run_system_with_empty_faults_is_run_system() {
    let driver = RedundantDriver::new(CoreConfig::table1());
    let ts = traces(4, 500, 9);
    let plain = driver.run_system(&mut policies(4), &ts);
    let faulted = driver.run_system_with_faults(&mut policies(4), &ts, &[]);
    assert_equal("no faults", &faulted, &plain);
    let empty: Vec<Vec<unsync_fault::PairFault>> = vec![Vec::new(); 4];
    let empty_lists = driver.run_system_with_faults(&mut policies(4), &ts, &empty);
    assert_equal("empty per-lane fault lists", &empty_lists, &plain);
}
