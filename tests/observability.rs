//! End-to-end observability properties: the recovery-episode spans a
//! run produces must agree with the event-stream counters they are
//! derived from, cycle stamps must be monotone per lane, and all of it
//! must be deterministic.

use unsync::core::{UnsyncConfig, UnsyncPolicy};
use unsync::exec::{overlap_fraction, RedundantDriver, RunResult, TraceEventKind};
use unsync::mem::WritePolicy;
use unsync::prelude::*;
use unsync::sim::CoreConfig;

fn strikes(insts: u64, n: u64) -> Vec<PairFault> {
    (0..n)
        .map(|i| PairFault {
            at: (i + 1) * insts / (n + 1),
            core: (i % 2) as usize,
            site: FaultSite {
                target: FaultTarget::RegisterFile,
                bit_offset: 3 + i,
            },
            kind: unsync::fault::FaultKind::Single,
        })
        .collect()
}

fn faulted_pair_run(seed: u64) -> RunResult {
    let t = WorkloadGen::new(Benchmark::Gzip, 5_000, seed).collect_trace();
    let driver = RedundantDriver::new(CoreConfig::table1());
    let mut policy = UnsyncPolicy::new(
        "unsync_pair",
        UnsyncConfig::paper_baseline(),
        WritePolicy::WriteThrough,
        0,
    );
    driver.run(&mut policy, &t, &strikes(5_000, 3))
}

/// Span-derived statistics are pinned to the event-stream counters
/// they must agree with: one episode per completed recovery, and the
/// per-episode stalls summing to the counted recovery stall.
#[test]
fn span_stats_agree_with_event_counters() {
    let res = faulted_pair_run(11);
    let ev = &res.events;
    assert!(res.out.recoveries > 0, "fixture must recover");
    assert_eq!(
        ev.episodes().len() as u64,
        ev.count(TraceEventKind::RecoveryEnd)
    );
    assert_eq!(
        ev.episodes().iter().map(|e| e.stall).sum::<u64>(),
        ev.sum(TraceEventKind::RecoveryEnd)
    );
    let stats = ev.span_stats();
    assert_eq!(stats.episodes, res.out.recoveries);
    assert_eq!(stats.total_stall, res.out.recovery_stall_cycles);
    assert!(stats.mttr_max >= stats.mttr_p95 && stats.mttr_p95 >= stats.mttr_p50);
    assert!(stats.mttr_p50 > 0, "UnSync recovery is never free");
}

/// Episodes carry causally ordered stamps: a detection at or before the
/// recovery start, which is at or before the end; the stall never
/// exceeds the run length.
#[test]
fn episodes_are_causally_ordered() {
    let res = faulted_pair_run(12);
    assert!(!res.events.episodes().is_empty());
    for ep in res.events.episodes() {
        assert!(ep.start <= ep.end, "{ep:?}");
        if let Some(d) = ep.detect {
            assert!(d <= ep.start, "{ep:?}");
        }
        assert!(ep.end <= res.out.cycles, "{ep:?}");
        assert!(ep.duration() <= res.out.cycles);
    }
    // A single lane never overlaps with itself under UnSync's
    // stop-both-cores recovery.
    assert_eq!(overlap_fraction(res.events.episodes()), 0.0);
}

/// Every lane's ring stamps are monotone non-decreasing — the per-lane
/// cycle-stamp guarantee the stream clock enforces.
#[test]
fn ring_stamps_are_monotone_per_lane() {
    for res in [faulted_pair_run(13), faulted_pair_run(17)] {
        let stamps: Vec<u64> = res.events.recent().map(|e| e.cycle).collect();
        assert!(!stamps.is_empty());
        assert!(
            stamps.windows(2).all(|w| w[0] <= w[1]),
            "stamps regressed: {stamps:?}"
        );
        // Events exist and are stamped within the run.
        assert!(stamps.iter().all(|&c| c <= res.out.cycles));
    }
}

/// Spans, stamps, and stats are bit-deterministic across repeated runs.
#[test]
fn observability_layer_is_deterministic() {
    let a = faulted_pair_run(14);
    let b = faulted_pair_run(14);
    assert_eq!(a.out, b.out);
    assert_eq!(a.events.episodes(), b.events.episodes());
    assert_eq!(a.events.span_stats(), b.events.span_stats());
    let (ra, rb): (Vec<_>, Vec<_>) = (a.events.recent().collect(), b.events.recent().collect());
    assert_eq!(ra, rb);
}

/// Reunion's rollback recoveries also pair into episodes (synthesized
/// from bare `Rollback` events — rollback *is* its recovery), so
/// episode accounting spans both recovery disciplines.
#[test]
fn rollback_schemes_produce_episodes_too() {
    let t = WorkloadGen::new(Benchmark::Gzip, 5_000, 21).collect_trace();
    let fault = PairFault {
        at: 2_500,
        core: 0,
        site: FaultSite {
            target: FaultTarget::Rob,
            bit_offset: 7,
        },
        kind: unsync::fault::FaultKind::Single,
    };
    let driver = RedundantDriver::new(CoreConfig::table1());
    let mut policy =
        unsync::reunion::ReunionPolicy::new(unsync::reunion::ReunionConfig::paper_baseline());
    let res = driver.run(&mut policy, &t, &[fault]);
    let rollbacks = res.events.count(TraceEventKind::Rollback);
    assert!(rollbacks > 0, "fixture must roll back");
    let episodes = res.events.episodes();
    assert_eq!(episodes.iter().map(|e| e.rollbacks).sum::<u64>(), rollbacks);
    for ep in episodes {
        assert!(ep.detect.is_some(), "rollback follows a detection: {ep:?}");
    }
}
