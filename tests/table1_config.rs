//! Integration check: the default configuration of every crate is the
//! paper's Table I, end to end.

use unsync::prelude::*;

#[test]
fn core_defaults_are_table1() {
    let c = CoreConfig::table1();
    assert_eq!(c.fetch_width, 4);
    assert_eq!(c.dispatch_width, 4);
    assert_eq!(c.commit_width, 4);
    assert_eq!(c.iq_size, 64);
    assert!((c.clock_ghz - 2.0).abs() < 1e-12);
    assert_eq!(c, CoreConfig::default());
}

#[test]
fn hierarchy_defaults_are_table1() {
    let h = HierarchyConfig::table1();
    assert_eq!(h.l1d.size_bytes, 32 * 1024);
    assert_eq!(h.l1d.assoc, 2);
    assert_eq!(h.l1d.mshrs, 10);
    assert_eq!(h.l1d.hit_latency, 2);
    assert_eq!(h.l1d.line_bytes, 64);
    assert_eq!(h.l2.size_bytes, 4 * 1024 * 1024);
    assert_eq!(h.l2.assoc, 8);
    assert_eq!(h.l2.hit_latency, 20);
    assert_eq!(h.l2.mshrs, 20);
    assert_eq!(h.itlb.entries, 48);
    assert_eq!(h.itlb.assoc, 2);
    assert_eq!(h.dtlb.entries, 64);
    assert_eq!(h.dtlb.assoc, 2);
    assert_eq!(h.dram_latency, 400);
    assert_eq!(h.bus_bytes_per_cycle, 8, "64-bit wide memory path");
}

#[test]
fn architecture_defaults_match_section_v() {
    // UnSync: write-through L1, 10 CB entries.
    assert_eq!(UnsyncConfig::paper_baseline().cb_entries, 10);
    // Reunion: FI=10, 17-entry CSB of 66-bit entries.
    let r = ReunionConfig::paper_baseline();
    assert_eq!(r.fingerprint_interval, 10);
    assert_eq!(r.csb_entries, 17);
    assert_eq!(r.csb_bits(), 1122, "the paper's 17 × 66 = 1122-bit buffer");
}
