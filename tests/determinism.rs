//! Whole-system determinism: identical inputs yield bit-identical
//! outcomes across the full stack, including under fault injection.

use unsync::prelude::*;

#[test]
fn all_three_architectures_are_deterministic() {
    let run = || {
        let t = WorkloadGen::new(Benchmark::Vpr, 15_000, 77).collect_trace();
        let mut s = WorkloadGen::new(Benchmark::Vpr, 15_000, 77);
        let base = run_baseline(CoreConfig::table1(), &mut s);
        let r =
            ReunionPair::new(CoreConfig::table1(), ReunionConfig::paper_baseline()).run(&t, &[]);
        let u = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline()).run(&t, &[]);
        (base.core.last_commit_cycle, r, u)
    };
    assert_eq!(run(), run());
}

#[test]
fn fault_runs_are_deterministic() {
    let t = WorkloadGen::new(Benchmark::Dijkstra, 10_000, 5).collect_trace();
    let faults: Vec<PairFault> = (0..5)
        .map(|i| {
            let mut f = PairFault::plan(321, i);
            f.at = 2_000 + i * 1_500;
            f
        })
        .collect();
    let unsync = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline());
    assert_eq!(unsync.run(&t, &faults), unsync.run(&t, &faults));
    let reunion = ReunionPair::new(CoreConfig::table1(), ReunionConfig::paper_baseline());
    assert_eq!(reunion.run(&t, &faults), reunion.run(&t, &faults));
}

#[test]
fn different_seeds_give_different_traces_but_both_run_correctly() {
    for seed in [1u64, 2, 3] {
        let t = WorkloadGen::new(Benchmark::Fft, 8_000, seed).collect_trace();
        let u = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline()).run(&t, &[]);
        assert!(u.correct(), "seed {seed}: {u:?}");
        assert_eq!(u.committed, 8_000);
    }
}

#[test]
fn golden_run_agrees_with_pair_committed_memory() {
    // The pair's committed memory is validated against golden internally;
    // cross-check the golden run itself is stable.
    let t = WorkloadGen::new(Benchmark::Crc32, 5_000, 13).collect_trace();
    let (s1, m1) = golden_run(&t);
    let (s2, m2) = golden_run(&t);
    assert_eq!(s1, s2);
    assert_eq!(m1.footprint_words(), m2.footprint_words());
    assert!(m1.iter().eq(m2.iter()));
}
