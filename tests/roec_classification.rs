//! Differential tests pinning the ROEC 2.0 outcome classifier
//! (`unsync_fault::roec::classify`) on hand-constructed journals —
//! known answer per label — and golden-locking the per-structure
//! vulnerability table for one fixed smoke grid, so any change to
//! strike planning, liveness probes, delivery order, or classification
//! rules shows up as a reviewable diff here.

use unsync_bench::roec_uncore::{run_campaign, RoecUncoreConfig, SCHEMES};
use unsync_bench::Runner;
use unsync_fault::roec::{classify, RoecEvent, RoecEventKind, StrikeOutcome};

fn ev(kind: RoecEventKind, cycle: u64) -> RoecEvent {
    RoecEvent::at(kind, cycle)
}

#[test]
fn empty_journal_with_clean_memory_is_masked() {
    assert_eq!(classify(&[], true), StrikeOutcome::Masked);
    // A benign (dead-state) delivery event changes nothing.
    assert_eq!(
        classify(&[ev(RoecEventKind::BenignFault, 10)], true),
        StrikeOutcome::Masked
    );
    // Unrelated journal noise never counts as detection.
    assert_eq!(
        classify(
            &[ev(RoecEventKind::Other, 3), ev(RoecEventKind::Other, 9)],
            true
        ),
        StrikeOutcome::Masked
    );
}

#[test]
fn silent_corruption_with_diverged_memory_is_sdc() {
    assert_eq!(
        classify(&[ev(RoecEventKind::SilentFault, 42)], false),
        StrikeOutcome::Sdc
    );
    // Memory divergence alone — even with an empty journal — is SDC:
    // nothing fired, the image is wrong.
    assert_eq!(classify(&[], false), StrikeOutcome::Sdc);
}

#[test]
fn detection_plus_clean_memory_is_detected_recovered() {
    // A full recovery episode.
    let episode = [
        ev(RoecEventKind::Detection, 100),
        ev(RoecEventKind::RecoveryStart, 104),
        ev(RoecEventKind::RecoveryEnd, 940),
    ];
    assert_eq!(classify(&episode, true), StrikeOutcome::DetectedRecovered);
    // In-place correction (SECDED single, DMR refetch) counts as
    // detected even without a recovery span.
    let corrected = [
        ev(RoecEventKind::Detection, 100),
        ev(RoecEventKind::CorrectedInPlace, 100),
    ];
    assert_eq!(classify(&corrected, true), StrikeOutcome::DetectedRecovered);
    // A TMR outvote likewise.
    assert_eq!(
        classify(&[ev(RoecEventKind::Corrected, 7)], true),
        StrikeOutcome::DetectedRecovered
    );
}

#[test]
fn detection_without_correctness_is_detected_unrecoverable() {
    // Detected, but the machine declared the error unrecoverable —
    // even when memory happens to match (DUE by declaration).
    let due = [
        ev(RoecEventKind::Detection, 50),
        ev(RoecEventKind::Unrecoverable, 50),
    ];
    assert_eq!(classify(&due, true), StrikeOutcome::DetectedUnrecoverable);
    // Detected and memory diverged (DED without correction).
    assert_eq!(
        classify(&[ev(RoecEventKind::Detection, 50)], false),
        StrikeOutcome::DetectedUnrecoverable
    );
}

#[test]
fn detection_beats_silent_fault_in_mixed_journals() {
    // Parity caught the first flip, a second flip slipped through, the
    // image ended clean: the run detected *something* and ended
    // correct — detected-recovered, not masked.
    let mixed = [
        ev(RoecEventKind::SilentFault, 10),
        ev(RoecEventKind::Detection, 20),
        ev(RoecEventKind::RecoveryStart, 24),
        ev(RoecEventKind::RecoveryEnd, 800),
    ];
    assert_eq!(classify(&mixed, true), StrikeOutcome::DetectedRecovered);
}

/// Golden lock: the complete per-cell outcome sequence of the
/// `smoke(42)` grid (2 strikes per cell — strike 0 uniform, strike 1
/// liveness-conditioned). Regenerate by printing
/// `run_campaign(&RoecUncoreConfig::smoke(42), ..)` if an intentional
/// model change lands; any *unintentional* drift in strike planning,
/// occupancy probes, or classification fails here first.
#[test]
fn smoke_grid_42_vulnerability_table_is_locked() {
    const EXPECTED: [(&str, &str, [&str; 2]); 18] = [
        (
            "l2_data",
            "unsync_pair",
            ["masked", "detected_unrecoverable"],
        ),
        ("l2_data", "tmr_vote", ["masked", "sdc"]),
        ("l2_data", "secded_only", ["masked", "detected_recovered"]),
        (
            "l2_tag",
            "unsync_pair",
            ["masked", "detected_unrecoverable"],
        ),
        ("l2_tag", "tmr_vote", ["masked", "sdc"]),
        ("l2_tag", "secded_only", ["masked", "detected_recovered"]),
        (
            "mshr_entry",
            "unsync_pair",
            ["masked", "detected_recovered"],
        ),
        ("mshr_entry", "tmr_vote", ["masked", "sdc"]),
        ("mshr_entry", "secded_only", ["masked", "sdc"]),
        (
            "bank_arbiter",
            "unsync_pair",
            ["masked", "detected_recovered"],
        ),
        ("bank_arbiter", "tmr_vote", ["masked", "sdc"]),
        ("bank_arbiter", "secded_only", ["sdc", "sdc"]),
        ("cb_data", "unsync_pair", ["masked", "detected_recovered"]),
        ("cb_data", "tmr_vote", ["sdc", "sdc"]),
        ("cb_data", "secded_only", ["sdc", "sdc"]),
        ("cb_tag", "unsync_pair", ["masked", "detected_recovered"]),
        ("cb_tag", "tmr_vote", ["sdc", "sdc"]),
        ("cb_tag", "secded_only", ["sdc", "sdc"]),
    ];
    let cfg = RoecUncoreConfig::smoke(42);
    assert_eq!(cfg.strikes_per_cell, 2, "lock assumes the smoke grid shape");
    let records = run_campaign(&cfg, &Runner::new(2));
    assert_eq!(records.len(), EXPECTED.len() * 2);
    for (structure, scheme, outcomes) in EXPECTED {
        assert!(SCHEMES.contains(&scheme));
        for (strike, want) in outcomes.iter().enumerate() {
            let got = records
                .iter()
                .find(|r| {
                    r.structure == structure && r.scheme == scheme && r.strike == strike as u64
                })
                .unwrap_or_else(|| panic!("missing cell {structure}/{scheme}/{strike}"));
            assert_eq!(
                got.outcome.label(),
                *want,
                "outcome drifted at {structure}/{scheme} strike {strike}"
            );
        }
    }
}
