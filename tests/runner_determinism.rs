//! Determinism regression: the same `(seed, ExperimentConfig)` pushed
//! through the experiment runner at 1, 2, and 8 workers must produce
//! byte-identical JSONL for the Fig. 4 and Table I experiments. This is
//! the contract that makes parallel experiment runs trustworthy — worker
//! count may change wall-clock, never results.

use unsync_bench::{experiments, render, ExperimentConfig, RunLog, Runner};

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// The Fig. 4 run log's deterministic portion (header + records, no
/// meta line) at a given worker count.
fn fig4_jsonl(workers: usize, cfg: ExperimentConfig) -> Vec<String> {
    let rows = experiments::fig4_on(Runner::new(workers), cfg);
    let mut log = RunLog::start("fig4", cfg);
    for row in &rows {
        log.record(render::jsonl::fig4(row));
    }
    log.deterministic_lines().to_vec()
}

/// The Table I run log's deterministic portion.
fn table1_jsonl() -> Vec<String> {
    let mut log = RunLog::start_static("table1");
    log.record(render::jsonl::table1());
    log.deterministic_lines().to_vec()
}

/// The scheme-values run log (TMR voting, FlexStep granularity,
/// SECDED-only) at a given worker count.
fn schemes_jsonl(workers: usize, cfg: ExperimentConfig) -> Vec<String> {
    let rows = experiments::scheme_values_on(Runner::new(workers), cfg);
    let mut log = RunLog::start("schemes", cfg);
    for row in &rows {
        log.record(render::jsonl::scheme_values(row));
    }
    log.deterministic_lines().to_vec()
}

#[test]
fn fig4_jsonl_is_byte_identical_across_worker_counts() {
    let cfg = ExperimentConfig {
        inst_count: 1_500,
        seed: 7,
    };
    let reference = fig4_jsonl(WORKER_COUNTS[0], cfg);
    assert!(
        reference.len() > 2,
        "expected a header plus one record per benchmark, got {} lines",
        reference.len()
    );
    for &workers in &WORKER_COUNTS[1..] {
        let got = fig4_jsonl(workers, cfg);
        assert_eq!(
            got, reference,
            "fig4 JSONL diverged between 1 and {workers} workers"
        );
    }
}

#[test]
fn fig4_jsonl_depends_on_seed_not_workers() {
    // Sanity for the test above: the comparison is not vacuous — a
    // different seed must actually change the recorded rows.
    let a = fig4_jsonl(
        2,
        ExperimentConfig {
            inst_count: 1_500,
            seed: 7,
        },
    );
    let b = fig4_jsonl(
        2,
        ExperimentConfig {
            inst_count: 1_500,
            seed: 8,
        },
    );
    assert_ne!(a[1..], b[1..], "seed change must alter Fig. 4 measurements");
}

#[test]
fn table1_jsonl_is_byte_identical_across_repeated_renders() {
    let reference = table1_jsonl();
    assert_eq!(reference.len(), 2, "header + one machine-parameter record");
    for _ in 0..2 {
        assert_eq!(table1_jsonl(), reference, "Table I record must be stable");
    }
}

#[test]
fn scheme_values_jsonl_is_byte_identical_across_worker_counts() {
    let cfg = ExperimentConfig {
        inst_count: 1_500,
        seed: 7,
    };
    let reference = schemes_jsonl(WORKER_COUNTS[0], cfg);
    assert_eq!(
        reference.len(),
        1 + 3 * experiments::SCHEME_BENCHES.len(),
        "header plus three scheme records per benchmark"
    );
    for &workers in &WORKER_COUNTS[1..] {
        let got = schemes_jsonl(workers, cfg);
        assert_eq!(
            got, reference,
            "scheme JSONL diverged between 1 and {workers} workers"
        );
    }
}

#[test]
fn new_schemes_are_deterministic_across_repeated_same_seed_runs() {
    use unsync::prelude::*;
    let t = WorkloadGen::new(Benchmark::Dijkstra, 4_000, 17).collect_trace();
    let strike = |core: usize| PairFault {
        at: 2_111,
        core,
        site: FaultSite {
            target: FaultTarget::Rob,
            bit_offset: 29,
        },
        kind: unsync_fault::FaultKind::Single,
    };

    let tmr = || TmrTriple::new(CoreConfig::table1()).run(&t, &[strike(2)]);
    let tmr_ref = tmr();
    assert_eq!(tmr_ref.corrections, 1);

    let flex =
        || FlexPair::new(CoreConfig::table1(), FlexConfig::with_window(64)).run(&t, &[strike(1)]);
    let flex_ref = flex();
    assert_eq!(flex_ref.rollbacks, 1);

    let secded = || SecdedOnlyCore::new(CoreConfig::table1()).run(&t, &[strike(0)]);
    let secded_ref = secded();
    assert_eq!(secded_ref.corrected_in_place, 1);

    for _ in 0..2 {
        assert_eq!(tmr(), tmr_ref, "TMR diverged on a same-seed rerun");
        assert_eq!(flex(), flex_ref, "FlexStep diverged on a same-seed rerun");
        assert_eq!(
            secded(),
            secded_ref,
            "SECDED-only diverged on a same-seed rerun"
        );
    }
}

#[test]
fn run_system_is_deterministic_at_2_8_and_16_lanes() {
    // The heap-scheduled laggard loop must pick lanes exactly like the
    // linear min-scan it replaced: smallest lane clock first, lowest
    // lane index on ties. Per-lane outcomes pin the interleaving — any
    // scheduling difference shifts shared-L2 contention and shows up in
    // cycles/miss-rate — and repeated runs must be byte-identical.
    use unsync::prelude::*;
    for lanes in [2usize, 8, 16] {
        let traces: Vec<TraceProgram> = (0..lanes)
            .map(|p| WorkloadGen::new(Benchmark::Gzip, 1_000, 23 + p as u64).collect_trace())
            .collect();
        let run =
            || UnsyncSystem::new(CoreConfig::table1(), UnsyncConfig::paper_baseline()).run(&traces);
        let reference = run();
        assert_eq!(reference.pairs.len(), lanes);
        for (p, stats) in reference.pairs.iter().enumerate() {
            assert_eq!(stats.pair, p);
            assert_eq!(stats.core.committed, 1_000, "lane {p} of {lanes}");
            assert!(stats.core.correct(), "lane {p} of {lanes}: {stats:?}");
        }
        // Distinct per-lane seeds must yield distinct lane outcomes —
        // otherwise the equality below could pass vacuously.
        assert!(
            reference
                .pairs
                .windows(2)
                .any(|w| w[0].core.cycles != w[1].core.cycles),
            "expected per-lane variation across seeds"
        );
        for _ in 0..2 {
            assert_eq!(run(), reference, "{lanes}-lane system diverged");
        }
    }
}

#[test]
fn run_system_is_byte_identical_on_rerun_at_64_lanes() {
    // Many-core scale: the event queue drives 64 lanes (128 cores) over
    // one shared memory system. Full RunResult equality — counters,
    // event streams, final memory images — across a same-seed rerun.
    use unsync::prelude::*;
    use unsync_exec::RedundantDriver;
    use unsync_mem::WritePolicy;
    let lanes = 64usize;
    let traces: Vec<TraceProgram> = (0..lanes)
        .map(|p| {
            WorkloadGen::new_at(
                Benchmark::Gzip,
                300,
                41 + p as u64,
                0x1000_0000 + p as u64 * 0x0100_0000,
            )
            .collect_trace()
        })
        .collect();
    let driver = RedundantDriver::new(CoreConfig::table1());
    let run = || {
        let mut policies: Vec<unsync_core::UnsyncPolicy> = (0..lanes)
            .map(|p| {
                unsync_core::UnsyncPolicy::new(
                    "det64",
                    UnsyncConfig::paper_baseline(),
                    WritePolicy::WriteThrough,
                    2 * p,
                )
            })
            .collect();
        driver.run_system(&mut policies, &traces)
    };
    let (reference, _) = run();
    assert_eq!(reference.len(), lanes);
    assert!(reference.iter().all(|r| r.out.committed == 300));
    let (again, _) = run();
    assert_eq!(again, reference, "64-lane system diverged on rerun");
}

#[test]
fn lanesweep_smoke_diffs_clean_across_same_seed_runs() {
    // The lanesweep experiment (2 and 8 lanes, same seed twice) must
    // produce byte-identical run logs: written to two directories and
    // compared through the dashboard's zero-tolerance diff — exactly
    // the CI determinism gate.
    use unsync_bench::dashboard::{diff_dirs, DiffOptions};
    use unsync_bench::lanesweep::{run_sweep, summary_json, sweep_log, LaneSweepConfig};

    let cfg = LaneSweepConfig::smoke(19);
    let emit = |dir: &std::path::Path| {
        std::fs::create_dir_all(dir).unwrap();
        let rows = run_sweep(&cfg);
        assert_eq!(rows.len(), 2, "smoke sweeps 2 and 8 lanes");
        assert!(rows.iter().all(|r| r.recoveries == r.lanes as u64));
        let log_text = sweep_log(&cfg, &rows).finish(1);
        std::fs::write(dir.join("lanesweep.jsonl"), log_text).unwrap();
        let mut summary = summary_json(&cfg, &rows).render();
        summary.push('\n');
        std::fs::write(dir.join("BENCH_lanesweep.json"), summary).unwrap();
    };
    let dir_a = std::env::temp_dir().join("unsync_lanesweep_smoke_a");
    let dir_b = std::env::temp_dir().join("unsync_lanesweep_smoke_b");
    for d in [&dir_a, &dir_b] {
        let _ = std::fs::remove_dir_all(d);
    }
    emit(&dir_a);
    emit(&dir_b);
    let report = diff_dirs(&dir_a, &dir_b, DiffOptions::default()).expect("diff runs");
    assert!(
        report.clean(),
        "same-seed lanesweep runs must diff clean: {:?}",
        report.deltas
    );
    assert!(report.compared > 0, "the diff must compare real leaves");
}

#[test]
fn lockstep_pair_is_deterministic_across_repeated_runs() {
    use unsync::prelude::*;
    use unsync::reunion::LockstepPair;
    let t = WorkloadGen::new(Benchmark::Qsort, 5_000, 11).collect_trace();
    let run = |window: u64| {
        let mut pair = LockstepPair::new(CoreConfig::table1());
        pair.window = window;
        pair.run(&t)
    };
    for window in [1, 8, 64] {
        let reference = run(window);
        assert!(reference.core.cycles > 0);
        for _ in 0..2 {
            assert_eq!(run(window), reference, "window {window} diverged");
        }
    }
}

#[test]
fn nway_group_is_deterministic_across_repeated_runs() {
    use unsync::prelude::*;
    use unsync_fault::{FaultKind, FaultSite, FaultTarget, PairFault};
    let t = WorkloadGen::new(Benchmark::Fft, 5_000, 13).collect_trace();
    // One strike per replica index exercises every recovery source path.
    for ways in [2usize, 3, 4] {
        let faults: Vec<PairFault> = (0..ways)
            .map(|core| PairFault {
                at: 1_000 + 37 * core as u64,
                core,
                site: FaultSite {
                    target: FaultTarget::RegisterFile,
                    bit_offset: 67 + core as u64,
                },
                kind: FaultKind::Single,
            })
            .collect();
        let run = || {
            UnsyncGroup::new(CoreConfig::table1(), UnsyncConfig::paper_baseline(), ways)
                .run(&t, &faults)
        };
        let reference = run();
        assert_eq!(reference.core.recoveries, ways as u64, "{ways}-way");
        for _ in 0..2 {
            assert_eq!(run(), reference, "{ways}-way group diverged");
        }
    }
}
