//! End-to-end properties of the cycle-domain timeline export: the
//! Chrome-trace JSON must be byte-identical across same-seed reruns,
//! its episode spans must agree exactly with the span tracker the
//! run log reports (same MTTR), and even an event-free run must
//! serialize to a valid, loadable trace.

use unsync::core::{UnsyncConfig, UnsyncPolicy};
use unsync::exec::{RedundantDriver, RunResult};
use unsync::mem::WritePolicy;
use unsync::obs::Timeline;
use unsync::prelude::*;
use unsync::sim::CoreConfig;
use unsync_bench::timeline::{build_timeline, TimelineScenarioConfig};
use unsync_bench::Json;

fn scenario() -> TimelineScenarioConfig {
    TimelineScenarioConfig {
        lanes: 4,
        insts_per_lane: 800,
        seed: 11,
        strikes_per_lane: 2,
    }
}

fn faulted_pair_run(seed: u64) -> RunResult {
    let insts = 5_000u64;
    let t = WorkloadGen::new(Benchmark::Gzip, insts, seed).collect_trace();
    let driver = RedundantDriver::new(CoreConfig::table1());
    let mut policy = UnsyncPolicy::new(
        "unsync_pair",
        UnsyncConfig::paper_baseline(),
        WritePolicy::WriteThrough,
        0,
    );
    let faults: Vec<PairFault> = (0..3)
        .map(|i| PairFault {
            at: (i + 1) * insts / 4,
            core: (i % 2) as usize,
            site: FaultSite {
                target: FaultTarget::RegisterFile,
                bit_offset: 3 + i,
            },
            kind: unsync::fault::FaultKind::Single,
        })
        .collect();
    driver.run(&mut policy, &t, &faults)
}

#[test]
fn same_seed_chrome_traces_are_byte_identical() {
    let cfg = scenario();
    let a = build_timeline(&cfg).chrome_trace();
    let b = build_timeline(&cfg).chrome_trace();
    assert_eq!(a, b, "cycle-domain export must be deterministic");
    // And not vacuously: the scenario populates every track.
    let t = build_timeline(&cfg);
    assert!(t.episode_count() > 0, "no recovery episodes in fixture");
    assert!(!t.strikes.is_empty(), "no uncore strikes in fixture");
    assert!(!t.bank_conflicts.is_empty(), "no bank conflicts in fixture");
}

#[test]
fn episode_spans_match_the_span_tracker_exactly() {
    let res = faulted_pair_run(11);
    assert!(res.out.recoveries > 0, "fixture must recover");
    let mut tl = Timeline::new("episode_check");
    tl.add_run(0, &res);

    // The timeline's episodes are the span tracker's episodes —
    // identical spans, so identical MTTR in any downstream view.
    let stats = res.events.span_stats();
    let eps = &tl.lanes[0].episodes;
    assert_eq!(eps.len() as u64, stats.episodes);
    assert_eq!(eps.iter().map(|e| e.stall).sum::<u64>(), stats.total_stall);
    let mean = eps.iter().map(|e| e.stall).sum::<u64>() as f64 / eps.len() as f64;
    assert!((mean - stats.mttr_mean).abs() < 1e-9);

    // The serialized B/E spans carry exactly those cycles.
    let doc = Json::parse(&tl.chrome_trace()).expect("trace parses");
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("no traceEvents");
    };
    let ph_ts = |ph: &str| -> Vec<u64> {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("recovery"))
            .map(|e| e.get("ts").and_then(Json::as_u64).expect("integer ts"))
            .collect()
    };
    let (begins, ends) = (ph_ts("B"), ph_ts("E"));
    assert_eq!(begins.len(), eps.len());
    assert_eq!(ends.len(), eps.len());
    for (i, ep) in eps.iter().enumerate() {
        assert_eq!(begins[i], ep.start);
        assert_eq!(ends[i], ep.end);
        assert_eq!(ends[i] - begins[i], ep.duration());
    }
}

#[test]
fn zero_event_run_exports_a_valid_empty_trace() {
    let t = WorkloadGen::new(Benchmark::Gzip, 500, 3).collect_trace();
    let driver = RedundantDriver::new(CoreConfig::table1());
    let mut policy = UnsyncPolicy::new(
        "unsync_pair",
        UnsyncConfig::paper_baseline(),
        WritePolicy::WriteThrough,
        0,
    );
    let res = driver.run(&mut policy, &t, &[]);
    assert_eq!(res.out.detections, 0, "fixture must be fault-free");

    let mut tl = Timeline::new("empty");
    tl.add_run(0, &res);
    let text = tl.chrome_trace();
    let doc = Json::parse(&text).expect("empty trace still parses");
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("no traceEvents");
    };
    // Track metadata only — no spans, instants, or counters. (The
    // fault-free run may still legitimately journal window compares,
    // so only recovery/detection/strike shapes are asserted absent.)
    assert!(events
        .iter()
        .all(|e| e.get("ph").and_then(Json::as_str) != Some("B")));
    let other = doc.get("otherData").expect("otherData present");
    assert_eq!(other.get("episodes").and_then(Json::as_u64), Some(0));
    assert_eq!(other.get("strikes").and_then(Json::as_u64), Some(0));
    assert_eq!(other.get("ts_unit").and_then(Json::as_str), Some("cycle"));
}

#[test]
fn chrome_trace_carries_required_tracks_and_fields() {
    let doc = Json::parse(&build_timeline(&scenario()).chrome_trace()).expect("trace parses");
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("no traceEvents");
    };
    let with_ph = |ph: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
            .count()
    };
    // Balanced duration spans, at least one instant and one counter.
    assert_eq!(with_ph("B"), with_ph("E"));
    assert!(with_ph("B") > 0);
    assert!(with_ph("i") > 0);
    assert!(with_ph("C") > 0);
    // Both cycle-domain processes announce their names, and every lane
    // of the scenario has a named thread track.
    let names: Vec<(&str, u64)> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .filter_map(|e| {
            Some((
                e.get("args")?.get("name")?.as_str()?,
                e.get("pid")?.as_u64()?,
            ))
        })
        .collect();
    assert!(names.contains(&("lanes (cycle domain)", 1)));
    assert!(names.contains(&("uncore (cycle domain)", 2)));
    for lane in 0..scenario().lanes {
        let label = format!("lane {lane}");
        assert!(
            names.iter().any(|(n, pid)| *pid == 1 && *n == label),
            "missing thread track for {label}"
        );
    }
    // Every non-metadata event stamps an integer cycle.
    for e in events {
        if e.get("ph").and_then(Json::as_str) != Some("M") {
            assert!(e.get("ts").and_then(Json::as_u64).is_some());
        }
    }
}
