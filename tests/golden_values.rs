//! Golden-value tests for the paper's headline experiments: the
//! quick-config (`ExperimentConfig::quick()`) JSONL output of Fig. 4,
//! Fig. 5, and Table I is snapshotted under `tests/golden/` and any
//! drift fails the build.
//!
//! When a change *intentionally* moves the numbers (new timing model,
//! retuned workload profiles, …), regenerate the snapshots with
//!
//! ```text
//! UNSYNC_BLESS=1 cargo test -q --test golden_values
//! ```
//!
//! and commit the diff — the review then shows exactly which measured
//! values moved, and by how much.

use std::fs;
use std::path::PathBuf;

use unsync::prelude::Benchmark;
use unsync_bench::{experiments, render, ExperimentConfig, RunLog, Runner};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.jsonl"))
}

/// Compares `lines` against the checked-in snapshot, or rewrites the
/// snapshot when `UNSYNC_BLESS` is set.
fn check(name: &str, lines: &[String]) {
    let text = lines.join("\n") + "\n";
    let path = golden_path(name);
    if std::env::var_os("UNSYNC_BLESS").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("create tests/golden");
        fs::write(&path, &text).expect("write golden snapshot");
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with \
             `UNSYNC_BLESS=1 cargo test -q --test golden_values`",
            path.display()
        )
    });
    assert_eq!(
        text, want,
        "{name} drifted from its golden snapshot; if the change is intended, \
         regenerate with `UNSYNC_BLESS=1 cargo test -q --test golden_values`"
    );
}

#[test]
fn fig4_quick_matches_golden() {
    let cfg = ExperimentConfig::quick();
    // Two workers: the snapshot also pins the parallel path's ordering.
    let rows = experiments::fig4_on(Runner::new(2), cfg);
    let mut log = RunLog::start("fig4", cfg);
    for row in &rows {
        log.record(render::jsonl::fig4(row));
    }
    check("fig4", log.deterministic_lines());
}

#[test]
fn fig5_quick_matches_golden() {
    let cfg = ExperimentConfig::quick();
    // The paper's two highlighted benchmarks keep the snapshot (and the
    // test) small; the full five-benchmark sweep lives in the fig5 bin.
    let benches = [Benchmark::Ammp, Benchmark::Galgel];
    let cells = experiments::fig5_on(Runner::new(2), cfg, &benches);
    let mut log = RunLog::start("fig5", cfg);
    for cell in &cells {
        log.record(render::jsonl::fig5(cell));
    }
    check("fig5", log.deterministic_lines());
}

#[test]
fn comparators_quick_matches_golden() {
    let cfg = ExperimentConfig::quick();
    let rows = experiments::comparators_on(Runner::new(2), cfg);
    let mut log = RunLog::start("comparators", cfg);
    // The original four-discipline records come first and keep their
    // frozen shape (rows 0-4 must stay byte-identical across PRs); the
    // new schemes append their own records after them.
    for row in &rows {
        log.record(render::jsonl::comparators(row));
    }
    for row in &rows {
        log.record(render::jsonl::comparator_schemes(row));
    }
    check("comparators", log.deterministic_lines());
}

#[test]
fn scheme_values_quick_match_golden() {
    let cfg = ExperimentConfig::quick();
    let rows = experiments::scheme_values_on(Runner::new(2), cfg);
    let mut log = RunLog::start("schemes", cfg);
    for row in &rows {
        log.record(render::jsonl::scheme_values(row));
    }
    // The measured real-ISA kernel rows append strictly after the
    // synthetic rows: the pre-existing snapshot lines keep their byte
    // positions (see `synthetic_scheme_rows_are_an_untouched_prefix`).
    let kernel_rows = experiments::kernel_scheme_values_on(Runner::new(2), cfg);
    for row in &kernel_rows {
        log.record(render::jsonl::scheme_values(row));
    }
    check("schemes", log.deterministic_lines());
}

/// Pins the seam refactor's no-drift guarantee: the synthetic scheme
/// rows (header + three benchmarks x three schemes) must remain a
/// byte-identical prefix of `schemes.jsonl` — kernel rows may only
/// append after them.
#[test]
fn synthetic_scheme_rows_are_an_untouched_prefix() {
    let cfg = ExperimentConfig::quick();
    let rows = experiments::scheme_values_on(Runner::new(2), cfg);
    let mut log = RunLog::start("schemes", cfg);
    for row in &rows {
        log.record(render::jsonl::scheme_values(row));
    }
    let prefix = log.deterministic_lines().join("\n") + "\n";
    let snapshot = fs::read_to_string(golden_path("schemes")).expect("schemes golden");
    assert!(
        snapshot.starts_with(&prefix),
        "synthetic scheme rows must stay a byte-identical prefix of schemes.jsonl"
    );
}

#[test]
fn table1_matches_golden() {
    let mut log = RunLog::start_static("table1");
    log.record(render::jsonl::table1());
    check("table1", log.deterministic_lines());
}
