//! Property tests pinning the paged `ArchMemory` (hash-indexed 512-word
//! pages, `crates/isa/src/exec.rs`) to a `BTreeMap` reference model —
//! the word store it replaced. Any interleaving of reads, writes,
//! iteration, and footprint queries over unaligned addresses must be
//! observationally identical, including the deterministic SplitMix64
//! default that unwritten words read back.

use std::collections::BTreeMap;

use proptest::prelude::*;
use unsync::isa::exec::splitmix64;
use unsync::prelude::*;

/// The reference model: word-aligned address → value, with the same
/// deterministic cold-read default the real store documents.
#[derive(Default)]
struct RefMemory {
    words: BTreeMap<u64, u64>,
}

impl RefMemory {
    fn read(&self, addr: u64) -> u64 {
        let a = addr & !7;
        self.words
            .get(&a)
            .copied()
            .unwrap_or_else(|| splitmix64(a ^ 0xdead_beef_cafe_f00d))
    }

    fn write(&mut self, addr: u64, value: u64) {
        self.words.insert(addr & !7, value);
    }
}

/// Stretches a raw address over interesting territory: offsets 0–7
/// within a word, words around page boundaries (512 words per page),
/// and a sparse far region exercising many distinct pages.
fn spread(raw: u64) -> u64 {
    let word = raw % 1_600; // ~3 pages of dense traffic
    let far = u64::from(raw.is_multiple_of(7)) * ((raw % 13) << 24); // sparse pages
    word * 8 + far + (raw % 8) // unaligned byte offset
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Interleaved writes and reads agree with the reference at every
    /// step, and the aggregate views (`iter`, `footprint_words`) agree
    /// at the end.
    #[test]
    fn paged_store_matches_btreemap_reference(
        ops in prop::collection::vec((any::<bool>(), any::<u64>(), any::<u64>()), 1..300),
    ) {
        let mut paged = ArchMemory::new();
        let mut model = RefMemory::default();
        for &(is_write, raw, value) in &ops {
            let addr = spread(raw);
            if is_write {
                paged.write(addr, value);
                model.write(addr, value);
            }
            prop_assert_eq!(paged.read(addr), model.read(addr));
            // A probe the op sequence may never have written stays on
            // the deterministic cold default.
            let probe = spread(raw.wrapping_mul(0x9e37_79b9).wrapping_add(1));
            prop_assert_eq!(paged.read(probe), model.read(probe));
        }
        prop_assert_eq!(paged.footprint_words(), model.words.len());
        let walked: Vec<(u64, u64)> = paged.iter().collect();
        let expected: Vec<(u64, u64)> = model.words.iter().map(|(&a, &v)| (a, v)).collect();
        prop_assert_eq!(walked, expected, "iter must be address-ordered and complete");
    }

    /// Two memories receiving the same writes in different orders are
    /// equal, and equal to each other's clone.
    #[test]
    fn write_order_does_not_matter(
        writes in prop::collection::vec((any::<u64>(), any::<u64>()), 1..120),
        pivot in any::<u64>(),
    ) {
        let mut forward = ArchMemory::new();
        let mut rotated = ArchMemory::new();
        // Deduplicate by final value per word: replay keeping only each
        // word's last write, so order truly is the only difference.
        let mut last: BTreeMap<u64, u64> = BTreeMap::new();
        for &(raw, v) in &writes {
            last.insert(spread(raw) & !7, v);
        }
        let entries: Vec<(u64, u64)> = last.into_iter().collect();
        let split = (pivot as usize) % entries.len();
        for &(a, v) in entries.iter().chain(entries.iter()) {
            forward.write(a, v);
        }
        for &(a, v) in entries[split..].iter().chain(entries[..split].iter()) {
            rotated.write(a, v);
        }
        prop_assert_eq!(&forward, &rotated);
        prop_assert_eq!(&forward, &forward.clone());
        prop_assert_eq!(forward.footprint_words(), entries.len());
    }
}
