//! Granularity monotonicity of the FlexStep-style scheme: sweeping the
//! comparison window from per-instruction (1) to per-1k-instruction
//! (1024) windows must *never decrease* detection latency and *never
//! increase* the number of boundary comparisons. The invariants are
//! asserted over the sweep — not exact numbers — so they survive timing
//! retunes.

use unsync::prelude::*;

/// Doubling window sweep, 1 → 1024.
const WINDOWS: [u32; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// Trace length: a power of two so every window divides it evenly and
/// the error-free compare count is exactly `n / W`.
const INSTS: u64 = 2_048;

fn run(window: u32, faults: &[PairFault]) -> FlexOutcome {
    let t = WorkloadGen::new(Benchmark::Gzip, INSTS, 5).collect_trace();
    FlexPair::new(CoreConfig::table1(), FlexConfig::with_window(window)).run(&t, faults)
}

fn rob_strike(at: u64) -> PairFault {
    PairFault {
        at,
        core: 1,
        site: FaultSite {
            target: FaultTarget::Rob,
            bit_offset: 23,
        },
        kind: unsync_fault::FaultKind::Single,
    }
}

#[test]
fn error_free_compare_count_never_increases_with_the_window() {
    let outs: Vec<FlexOutcome> = WINDOWS.iter().map(|&w| run(w, &[])).collect();
    for (i, out) in outs.iter().enumerate() {
        assert_eq!(
            out.compares,
            INSTS / u64::from(WINDOWS[i]),
            "window {}",
            WINDOWS[i]
        );
        assert!(out.correct(), "window {}: {out:?}", WINDOWS[i]);
    }
    for pair in outs.windows(2) {
        assert!(pair[1].compares <= pair[0].compares);
    }
}

#[test]
fn detection_latency_never_decreases_and_compares_never_increase() {
    // Several strike points so the invariant is not an artifact of one
    // alignment (window boundaries shift relative to `at`).
    for at in [137u64, 777, 1_500] {
        let outs: Vec<FlexOutcome> = WINDOWS.iter().map(|&w| run(w, &[rob_strike(at)])).collect();
        for (i, out) in outs.iter().enumerate() {
            let w = WINDOWS[i];
            assert_eq!(out.mismatches, 1, "window {w}, strike {at}");
            assert_eq!(out.rollbacks, 1, "window {w}, strike {at}");
            // An in-window strike is caught at its own window boundary.
            assert_eq!(
                out.detection_latency_insts,
                u64::from(w) - at % u64::from(w),
                "window {w}, strike {at}"
            );
            assert!(out.correct(), "window {w}, strike {at}: {out:?}");
        }
        for (pair, w) in outs.windows(2).zip(WINDOWS.windows(2)) {
            assert!(
                pair[1].detection_latency_insts >= pair[0].detection_latency_insts,
                "strike {at}: latency shrank going from window {} to {}",
                w[0],
                w[1]
            );
            assert!(
                pair[1].compares <= pair[0].compares,
                "strike {at}: compare count grew going from window {} to {}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn store_buffer_occupancy_scales_with_the_window() {
    let outs: Vec<FlexOutcome> = WINDOWS.iter().map(|&w| run(w, &[])).collect();
    // CB/CSB pressure grows with granularity: the coarsest window must
    // buffer strictly more unverified stores on average than the finest.
    assert!(
        outs.last().unwrap().avg_store_occupancy > outs[0].avg_store_occupancy,
        "{:?} vs {:?}",
        outs.last().unwrap(),
        outs[0]
    );
    // And the trend is monotone across the doubling sweep.
    for pair in outs.windows(2) {
        assert!(
            pair[1].avg_store_occupancy >= pair[0].avg_store_occupancy,
            "{:?} vs {:?}",
            pair[1],
            pair[0]
        );
    }
}
