//! End-to-end coverage of the real-ISA kernel workloads (the
//! `WorkloadSource` seam's second backend): determinism of the emitted
//! traces and memory images, byte-identical multi-lane system runs at
//! 2 and 8 lanes, a `run_system` vs `run_system_reference` scheduler
//! differential over kernel traces, and all four kernels executing
//! through the unmodified `RedundantDriver` under UnsyncPair and TMR.

use unsync_core::{UnsyncConfig, UnsyncPair, UnsyncPolicy};
use unsync_exec::{RedundantDriver, TmrTriple};
use unsync_isa::{golden_run, TraceProgram};
use unsync_mem::{L2ContentionConfig, WritePolicy};
use unsync_sim::CoreConfig;
use unsync_workloads::{Kernel, WorkloadSource};

const INSTS: u64 = 1_200;
const SEED: u64 = 41;

/// One kernel trace per lane, lane-varying seeds and disjoint data
/// segments so lanes do not share cache lines.
fn lane_traces(kernel: Kernel, lanes: usize) -> Vec<TraceProgram> {
    (0..lanes)
        .map(|p| {
            kernel
                .source(INSTS, SEED + p as u64)
                .trace_at(0x1000_0000 + p as u64 * 0x0100_0000)
        })
        .collect()
}

fn policies(lanes: usize) -> Vec<UnsyncPolicy> {
    (0..lanes)
        .map(|p| {
            UnsyncPolicy::new(
                "kernel_system",
                UnsyncConfig::paper_baseline(),
                WritePolicy::WriteThrough,
                2 * p,
            )
        })
        .collect()
}

#[test]
fn same_kernel_and_seed_is_byte_identical_at_2_and_8_lanes() {
    let driver = RedundantDriver::new(CoreConfig::table1());
    for &kernel in Kernel::all() {
        for lanes in [2usize, 8] {
            let ta = lane_traces(kernel, lanes);
            let tb = lane_traces(kernel, lanes);
            assert_eq!(ta, tb, "{}: trace generation must be pure", kernel.name());
            let (ra, _) = driver.run_system(&mut policies(lanes), &ta);
            let (rb, _) = driver.run_system(&mut policies(lanes), &tb);
            for (p, (a, b)) in ra.iter().zip(rb.iter()).enumerate() {
                assert_eq!(a.out, b.out, "{} lane {p}: outcome counters", kernel.name());
                assert_eq!(a.events, b.events, "{} lane {p}: events", kernel.name());
                assert_eq!(a.memory, b.memory, "{} lane {p}: memory", kernel.name());
                assert_eq!(a.out.committed, INSTS, "{} lane {p}", kernel.name());
            }
        }
    }
}

#[test]
fn kernel_lane_memory_matches_the_isa_golden_run() {
    // The driver's committed memory image for a fault-free kernel lane
    // must equal architecturally executing the same trace.
    let driver = RedundantDriver::new(CoreConfig::table1());
    for &kernel in Kernel::all() {
        let ts = lane_traces(kernel, 2);
        let (results, _) = driver.run_system(&mut policies(2), &ts);
        for (p, (r, t)) in results.iter().zip(&ts).enumerate() {
            let (_, golden) = golden_run(t);
            assert_eq!(
                r.memory,
                golden,
                "{} lane {p}: committed memory vs golden run",
                kernel.name()
            );
        }
    }
}

#[test]
fn scheduler_matches_reference_loop_on_kernel_traces() {
    // The discrete-event scheduler against the laggard-scan oracle,
    // over kernel traces and a contended L2 (stalls perturb lane
    // clocks, so pop order depends on the contention model).
    let driver = RedundantDriver::new(CoreConfig::table1())
        .with_l2_contention(L2ContentionConfig::many_core());
    for &kernel in &[Kernel::Crc32, Kernel::Stringsearch] {
        for lanes in [2usize, 8] {
            let ts = lane_traces(kernel, lanes);
            let (new, new_mem) = driver.run_system(&mut policies(lanes), &ts);
            let (old, old_mem) = driver.run_system_reference(&mut policies(lanes), &ts);
            for (p, (n, o)) in new.iter().zip(old.iter()).enumerate() {
                assert_eq!(n.out, o.out, "{} lane {p}: counters", kernel.name());
                assert_eq!(n.events, o.events, "{} lane {p}: events", kernel.name());
                assert_eq!(n.memory, o.memory, "{} lane {p}: memory", kernel.name());
            }
            assert_eq!(
                new_mem
                    .l2_contention()
                    .map(|c| (c.conflicts, c.stall_cycles, c.requests)),
                old_mem
                    .l2_contention()
                    .map(|c| (c.conflicts, c.stall_cycles, c.requests)),
                "{} x{lanes}: L2 contention statistics",
                kernel.name()
            );
        }
    }
}

#[test]
fn every_kernel_runs_under_unsync_pair_and_tmr() {
    for &kernel in Kernel::all() {
        let t = kernel.source(INSTS, SEED).trace();
        let pair = UnsyncPair::new(CoreConfig::table1(), UnsyncConfig::paper_baseline());
        let p = pair.run(&t, &[]);
        assert_eq!(p.core.committed, INSTS, "{}: pair commits", kernel.name());
        assert!(
            p.core.correct(),
            "{}: pair correct: {:?}",
            kernel.name(),
            p.core
        );

        let tmr = TmrTriple::new(CoreConfig::table1()).run(&t, &[]);
        assert_eq!(tmr.core.committed, INSTS, "{}: TMR commits", kernel.name());
        assert!(tmr.correct(), "{}: TMR correct", kernel.name());
    }
}
